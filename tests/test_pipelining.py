"""Cross-group pipelining: the windowed scheduler, the per-GPU pipeline
window, and ``pipeline_depth`` end-to-end.

Pins the PR's load-bearing invariants:

1. the composition-scheduler table supports a *window* of in-flight
   groups, and ``advance`` fully resets a row — the historical
   cross-group state leak (stale ``sent_gpus`` satisfying ``gpu_done``
   for a group the GPU never composed in) must stay dead;
2. ``PipelineWindow`` is pure per-GPU backpressure with exact
   stall/admit accounting;
3. ``pipeline_depth`` is a *timing* knob only: frames are bit-identical
   at every depth, cycles are monotone nonincreasing as the window
   widens, and the overlap/stall/idle counters land on ``RunStats`` and
   the export schema.
"""

import numpy as np
import pytest

from repro.core.composition_scheduler import ImageCompositionScheduler
from repro.core.workflow import PipelineWindow
from repro.errors import ConfigError, SchedulingError
from repro.harness.export import COLUMNS, PIPELINE_COLUMNS, SERVE_SESSION_COLUMNS
from repro.harness.runner import make_setup, run
from repro.serve import (FrameServer, LoadProfile, calibrate_service_cycles,
                         generate_workload)
from repro.sim import Simulator
from repro.stats import RunStats
from repro.traces import load_benchmark


# ------------------------------------------------------- windowed scheduler


class TestWindowedScheduler:
    def test_window_bounds_in_flight_groups(self):
        sched = ImageCompositionScheduler(4, Simulator(), window=2)
        sched.open_group(1)
        sched.open_group(2)
        assert sched.in_flight() == (1, 2)
        with pytest.raises(SchedulingError):
            sched.open_group(3)
        sched.retire_group(1)
        sched.open_group(3)
        assert sched.in_flight() == (2, 3)
        assert sched.groups_peak == 2

    def test_duplicate_open_rejected(self):
        sched = ImageCompositionScheduler(4, Simulator())
        sched.open_group(1)
        with pytest.raises(SchedulingError):
            sched.open_group(1)

    def test_advance_requires_open_group(self):
        sched = ImageCompositionScheduler(4, Simulator())
        sched.open_group(1)
        with pytest.raises(SchedulingError):
            sched.advance(0, 99)

    def test_retire_unknown_group_rejected(self):
        sched = ImageCompositionScheduler(4, Simulator())
        with pytest.raises(SchedulingError):
            sched.retire_group(7)

    def test_window_must_be_positive(self):
        with pytest.raises(SchedulingError):
            ImageCompositionScheduler(4, Simulator(), window=0)

    def test_pairing_blocked_across_groups(self):
        """Rows in different in-flight groups must never pair."""
        sched = ImageCompositionScheduler(4, Simulator())
        sched.open_group(1)
        sched.open_group(2)
        for gpu in (0, 1):
            sched.advance(gpu, 1)
        for gpu in (2, 3):
            sched.advance(gpu, 2)
        sched.mark_ready(0)
        sched.mark_ready(2)
        # GPU2 is ready but lives in group 2: not a sender for GPU0.
        assert sched.find_sender_for(0) is None
        sched.mark_ready(1)
        assert sched.find_sender_for(0) == 1

    def test_per_group_partner_restriction(self):
        """A fail-stop repair narrows one group without touching others."""
        survivors = [{1}, {0}, set(), set()]
        sched = ImageCompositionScheduler(4, Simulator())
        sched.open_group(1, allowed_partners=survivors)
        sched.open_group(2)
        sched.advance(0, 1)
        sched.advance(3, 2)
        assert sched.partners_of(0) == {1}
        assert sched.partners_of(3) == {0, 1, 2}

    def test_groups_peak_tracks_concurrency(self):
        sched = ImageCompositionScheduler(2, Simulator())
        for cgid in (1, 2, 3):
            sched.open_group(cgid)
        sched.retire_group(1)
        sched.retire_group(2)
        sched.retire_group(3)
        assert sched.in_flight() == ()
        assert sched.groups_peak == 3


class TestCrossGroupLeakRegression:
    """`advance` must fully reset a row.

    Historically the table was rebuilt per group, so Sent/Received state
    could never leak. With a window of in-flight groups a row that kept
    its vectors across the CGID change would satisfy ``gpu_done`` for
    the *new* group without exchanging a single sub-image.
    """

    def _exchange(self, sched, sender, receiver):
        assert sched.find_sender_for(receiver) == sender
        sched.begin(sender, receiver)
        sched.complete(sender, receiver)

    def test_advance_resets_sent_and_received(self):
        sched = ImageCompositionScheduler(2, Simulator())
        sched.open_group(1)
        sched.open_group(2)
        for gpu in (0, 1):
            sched.advance(gpu, 1)
            sched.mark_ready(gpu)
        self._exchange(sched, sender=1, receiver=0)
        self._exchange(sched, sender=0, receiver=1)
        assert sched.gpu_done(0) and sched.gpu_done(1)
        assert sched.table[0].sent_gpus == {1}

        sched.retire_group(1)
        for gpu in (0, 1):
            sched.advance(gpu, 2)
        for gpu in (0, 1):
            row = sched.table[gpu]
            assert row.cgid == 2
            assert not row.ready and not row.sending and not row.receiving
            assert row.sent_gpus == set() and row.received_gpus == set()
            # the leak: stale vectors must not pre-complete the new group
            assert not sched.gpu_done(gpu)

        # ...and a full fresh exchange is required (and possible) again
        sched.mark_ready(0)
        sched.mark_ready(1)
        self._exchange(sched, sender=1, receiver=0)
        self._exchange(sched, sender=0, receiver=1)
        assert sched.all_done()


# --------------------------------------------------------- pipeline window


class _FakeEvent:
    def __init__(self):
        self.processed = False


class TestPipelineWindow:
    def test_depth_must_be_positive(self):
        with pytest.raises(ConfigError):
            PipelineWindow(0)
        with pytest.raises(ConfigError):
            PipelineWindow(-3)

    def test_unbounded_never_stalls(self):
        window = PipelineWindow(None)
        events = [_FakeEvent() for _ in range(10)]
        for event in events:
            assert window.admit_gate() is None
            window.push(event)
        assert window.admit_gate() is None
        assert window.stalls == 0
        assert window.admitted == 10
        assert window.pending() == 10

    def test_depth_one_is_a_barrier(self):
        window = PipelineWindow(1)
        assert window.admit_gate() is None
        event = _FakeEvent()
        window.push(event)
        assert window.admit_gate() is event
        assert window.stalls == 1
        event.processed = True
        assert window.admit_gate() is None
        assert window.pending() == 0

    def test_gate_returns_oldest_pending(self):
        window = PipelineWindow(2)
        first, second = _FakeEvent(), _FakeEvent()
        window.push(first)
        window.push(second)
        assert window.admit_gate() is first
        first.processed = True
        assert window.admit_gate() is None
        window.push(_FakeEvent())
        assert window.admit_gate() is second


# ----------------------------------------------------- depth end-to-end


@pytest.fixture(scope="module")
def depth_results():
    trace = load_benchmark("wolf", "tiny")
    out = {}
    for depth in (1, 2, None):
        setup = make_setup("tiny", num_gpus=8, pipeline_depth=depth)
        out[depth] = run("chopin+sched", trace, setup)
    return out


class TestPipelineDepthEndToEnd:
    def test_images_bit_identical_at_every_depth(self, depth_results):
        base = depth_results[None].image
        for depth in (1, 2):
            image = depth_results[depth].image
            assert np.array_equal(image.color, base.color)
            assert np.array_equal(image.depth, base.depth)

    def test_cycles_monotone_as_window_widens(self, depth_results):
        barrier = depth_results[1].frame_cycles
        shallow = depth_results[2].frame_cycles
        unbounded = depth_results[None].frame_cycles
        assert barrier >= shallow >= unbounded
        assert barrier > unbounded  # the window must actually buy overlap

    def test_depth_one_stalls_and_unbounded_does_not(self, depth_results):
        assert depth_results[1].stats.pipeline_stall_cycles > 0
        assert depth_results[None].stats.pipeline_stall_cycles == 0

    def test_overlap_and_idle_counters(self, depth_results):
        stats = depth_results[None].stats
        assert stats.comp_overlap_cycles > 0
        assert stats.scheduler_groups_peak > 1
        assert depth_results[None].stats.idle_cycles \
            < depth_results[1].stats.idle_cycles

    def test_depth_stamped_on_stats(self, depth_results):
        assert depth_results[1].stats.pipeline_depth == 1
        assert depth_results[2].stats.pipeline_depth == 2
        assert depth_results[None].stats.pipeline_depth == 0  # unbounded


# ------------------------------------------------------------ export schema


class TestPipelineExportSchema:
    def test_pipeline_columns_in_export_schema(self):
        for column in PIPELINE_COLUMNS:
            assert column in COLUMNS

    def test_pipeline_summary_matches_columns(self):
        summary = RunStats(num_gpus=4).pipeline_summary()
        assert set(summary) == set(PIPELINE_COLUMNS)

    def test_serve_session_schema_has_overlap_columns(self):
        assert "overlap_cycles" in SERVE_SESSION_COLUMNS
        assert "overlapped_batches" in SERVE_SESSION_COLUMNS

    def test_stats_roundtrip_keeps_pipeline_fields(self):
        stats = RunStats(num_gpus=4)
        stats.pipeline_depth = 3
        stats.pipeline_stall_cycles = 123.5
        stats.comp_overlap_cycles = 456.25
        stats.idle_cycles = 789.0
        stats.scheduler_groups_peak = 6
        stats.serve_overlap_cycles = 42.0
        stats.serve_overlapped_batches = 7
        clone = RunStats.from_dict(stats.to_dict())
        assert clone.pipeline_summary() == stats.pipeline_summary()
        assert clone.serve_overlap_cycles == 42.0
        assert clone.serve_overlapped_batches == 7


# ------------------------------------------------------- serve overlap


@pytest.fixture(scope="module")
def serve_setup():
    return make_setup("tiny", num_gpus=2)


@pytest.fixture(scope="module")
def serve_workload(serve_setup):
    _, mean = calibrate_service_cycles("chopin+sched", ["wolf"], serve_setup)
    profile = LoadProfile(sessions=3, rate_x=4.0, duration_x=20.0, seed=1)
    return generate_workload(profile, ["wolf"], mean, groups=2)


class TestServeCrossRequestOverlap:
    def test_overlap_counters_only_when_opted_in(self, serve_setup,
                                                 serve_workload):
        plain = FrameServer("chopin+sched", serve_setup, serve_workload,
                            groups=2, queue_limit=8, batch_limit=2)
        report_off = plain.serve()
        assert report_off.stats.serve_overlap_cycles == 0.0
        assert report_off.stats.serve_overlapped_batches == 0

        overlapped = FrameServer("chopin+sched", serve_setup, serve_workload,
                                 groups=2, queue_limit=8, batch_limit=2,
                                 pipeline_overlap=True)
        report_on = overlapped.serve()
        # 4x saturation keeps groups back-to-back: overlap must happen
        assert report_on.stats.serve_overlapped_batches > 0
        assert report_on.stats.serve_overlap_cycles > 0.0

        # a timing knob, never a result knob
        a = plain.rendered_results["wolf"].image
        b = overlapped.rendered_results["wolf"].image
        assert np.array_equal(a.color, b.color)
        assert np.array_equal(a.depth, b.depth)
