"""Statistics containers and aggregation helpers."""

import pytest

from repro.stats import (ALL_STAGES, GPUStats, RunStats, STAGE_FRAGMENT,
                         STAGE_GEOMETRY, TRAFFIC_COMPOSITION, TRAFFIC_SYNC,
                         gmean, normalize, speedup)


class TestGPUStats:
    def test_total_cycles(self):
        stats = GPUStats()
        stats.stage_cycles[STAGE_GEOMETRY] = 10
        stats.stage_cycles[STAGE_FRAGMENT] = 30
        assert stats.total_cycles == 40

    def test_fragments_passed_combines_early_and_late(self):
        stats = GPUStats()
        stats.fragments_passed_early_z = 7
        stats.fragments_passed_late = 3
        assert stats.fragments_passed == 10


class TestRunStats:
    def test_gpus_auto_created(self):
        stats = RunStats(num_gpus=3)
        assert len(stats.gpus) == 3

    def test_stage_totals_across_gpus(self):
        stats = RunStats(num_gpus=2)
        stats.add_cycles(0, STAGE_GEOMETRY, 10)
        stats.add_cycles(1, STAGE_GEOMETRY, 20)
        stats.add_cycles(1, STAGE_FRAGMENT, 70)
        totals = stats.stage_cycle_totals()
        assert totals[STAGE_GEOMETRY] == 30
        assert stats.stage_fraction(STAGE_GEOMETRY) == pytest.approx(0.3)

    def test_stage_fraction_empty_is_zero(self):
        assert RunStats(num_gpus=1).stage_fraction(STAGE_GEOMETRY) == 0.0

    def test_traffic_totals_by_category(self):
        stats = RunStats(num_gpus=2)
        stats.add_traffic(0, TRAFFIC_COMPOSITION, 100)
        stats.add_traffic(1, TRAFFIC_SYNC, 50)
        assert stats.traffic_total(TRAFFIC_COMPOSITION) == 100
        assert stats.traffic_total() == 150

    def test_all_stages_constant_covers_known_stages(self):
        assert STAGE_GEOMETRY in ALL_STAGES
        assert len(ALL_STAGES) == 6


class TestAggregations:
    def test_speedup(self):
        base = RunStats(num_gpus=1)
        base.frame_cycles = 100
        cand = RunStats(num_gpus=1)
        cand.frame_cycles = 50
        assert speedup(base, cand) == 2.0

    def test_speedup_zero_candidate(self):
        base = RunStats(num_gpus=1)
        base.frame_cycles = 100
        cand = RunStats(num_gpus=1)
        with pytest.raises(ZeroDivisionError):
            speedup(base, cand)

    def test_gmean_known_value(self):
        assert gmean([1.0, 4.0]) == pytest.approx(2.0)

    def test_gmean_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            gmean([])
        with pytest.raises(ValueError):
            gmean([1.0, 0.0])

    def test_normalize(self):
        out = normalize({"a": 100.0, "b": 50.0}, "a")
        assert out == {"a": 1.0, "b": 2.0}
