"""Textures and pixel-shader models."""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.shading import (PixelShader, ShaderLibrary, Texture, TexturedShader,
                           checkerboard, value_noise)


class TestTexture:
    def test_rejects_bad_shape(self):
        with pytest.raises(PipelineError):
            Texture(np.zeros((4, 4, 3)))

    def test_sample_exact_texels(self):
        data = np.zeros((2, 2, 4), dtype=np.float32)
        data[0, 1] = [1, 2, 3, 4]
        tex = Texture(data)
        sample = tex.sample(np.array([0.75]), np.array([0.25]))
        assert np.allclose(sample[0], [1, 2, 3, 4])

    def test_wrap_addressing(self):
        tex = checkerboard(size=8)
        inside = tex.sample(np.array([0.1]), np.array([0.1]))
        wrapped = tex.sample(np.array([1.1]), np.array([2.1]))
        assert np.allclose(inside, wrapped)

    def test_checkerboard_alternates(self):
        tex = checkerboard(size=8, squares=2)
        a = tex.sample(np.array([0.1]), np.array([0.1]))
        b = tex.sample(np.array([0.6]), np.array([0.1]))
        assert not np.allclose(a, b)

    def test_checkerboard_rejects_bad_args(self):
        with pytest.raises(PipelineError):
            checkerboard(size=0)

    def test_value_noise_deterministic(self):
        assert np.array_equal(value_noise(8, seed=3).data,
                              value_noise(8, seed=3).data)
        assert not np.array_equal(value_noise(8, seed=3).data,
                                  value_noise(8, seed=4).data)


class TestShaders:
    def test_passthrough(self):
        shader = PixelShader()
        colors = np.random.default_rng(0).random((5, 4)).astype(np.float32)
        out = shader.shade(np.zeros(5, int), np.zeros(5, int), colors)
        assert np.array_equal(out, colors)

    def test_textured_modulates_rgb_not_alpha(self):
        tex = Texture(np.full((2, 2, 4), 0.5, dtype=np.float32))
        shader = TexturedShader(tex, 16, 16)
        colors = np.ones((3, 4), dtype=np.float32)
        out = shader.shade(np.array([0, 5, 10]), np.array([0, 5, 10]), colors)
        assert np.allclose(out[:, :3], 0.5)
        assert np.allclose(out[:, 3], 1.0)

    def test_textured_does_not_mutate_input(self):
        tex = Texture(np.full((2, 2, 4), 0.5, dtype=np.float32))
        shader = TexturedShader(tex, 16, 16)
        colors = np.ones((1, 4), dtype=np.float32)
        shader.shade(np.array([0]), np.array([0]), colors)
        assert np.allclose(colors, 1.0)

    def test_library_fallback_to_default(self):
        lib = ShaderLibrary(16, 16)
        assert isinstance(lib.shader_for(None), PixelShader)
        assert isinstance(lib.shader_for(99), PixelShader)

    def test_library_registered_texture(self):
        lib = ShaderLibrary(16, 16)
        lib.register_texture(0, checkerboard())
        assert isinstance(lib.shader_for(0), TexturedShader)
