"""Change-scoped linting tests: dependency expansion + ``--changed`` CLI.

The CLI tests build a real throwaway git repository so the scope
computation runs against the same plumbing (`merge-base`, `diff`,
`ls-files --others`) the flag uses in anger.
"""

import json
import pathlib
import subprocess
import textwrap

import pytest

from repro.analysis.flow import Project
from repro.analysis.scope import (changed_scope, expand_with_dependents,
                                  git_changed_files)
from repro.cli import main
from repro.errors import ConfigError

VIOLATION = textwrap.dedent("""
    import random


    def jitter():
        return random.random()
""")

CLEAN = textwrap.dedent("""
    def double(x):
        return 2 * x
""")


def _write_package(root, **sources):
    pkg = root / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for name, source in sources.items():
        (pkg / f"{name}.py").write_text(source)
    return pkg


def _git(repo, *args):
    subprocess.run(["git", "-c", "user.email=t@t", "-c", "user.name=t"]
                   + list(args), cwd=str(repo), check=True,
                   stdout=subprocess.PIPE, stderr=subprocess.PIPE)


def _git_repo(tmp_path):
    _git(tmp_path, "init", "-q")
    return tmp_path


class TestExpandWithDependents:
    def test_reverse_import_closure(self, tmp_path):
        pkg = _write_package(
            tmp_path,
            base=CLEAN,
            middle="from pkg.base import double\n",
            top="from pkg.middle import double\n",
            unrelated=CLEAN)
        project = Project.from_paths([pkg])
        changed = {(pkg / "base.py").resolve()}
        scope = expand_with_dependents(project, changed)
        names = {path.name for path in scope}
        assert {"base.py", "middle.py", "top.py"} <= names
        assert "unrelated.py" not in names

    def test_star_reexport_facade_is_chased(self, tmp_path):
        # consumer imports through a `from pkg.core import *` facade:
        # a change to core must pull in the facade AND the consumer,
        # even though the facade's import table has no member entries
        pkg = _write_package(
            tmp_path,
            core=CLEAN,
            facade="from pkg.core import *\n",
            consumer="from pkg.facade import double\n")
        project = Project.from_paths([pkg])
        assert project.resolve_name("pkg.facade", "double") \
            == "pkg.core.double"
        scope = expand_with_dependents(
            project, {(pkg / "core.py").resolve()})
        names = {path.name for path in scope}
        assert {"core.py", "facade.py", "consumer.py"} <= names

    def test_changed_module_pulls_its_package_init(self, tmp_path):
        pkg = _write_package(tmp_path, base=CLEAN)
        project = Project.from_paths([pkg])
        scope = expand_with_dependents(
            project, {(pkg / "base.py").resolve()})
        assert (pkg / "__init__.py").resolve() in scope


class TestChangedScope:
    def test_requires_a_git_checkout(self, tmp_path):
        pkg = _write_package(tmp_path, base=CLEAN)
        with pytest.raises(ConfigError, match="git checkout"):
            changed_scope([pkg], "HEAD")

    def test_untracked_files_count_as_changed(self, tmp_path):
        repo = _git_repo(tmp_path)
        pkg = _write_package(repo, base=CLEAN)
        _git(repo, "add", "-A")
        _git(repo, "commit", "-qm", "seed")
        (pkg / "fresh.py").write_text(CLEAN)
        changed = git_changed_files("HEAD", pkg)
        assert (pkg / "fresh.py").resolve() in changed
        scope = changed_scope([pkg], "HEAD")
        assert (pkg / "fresh.py").resolve() in scope
        assert (pkg / "base.py").resolve() not in scope

    def test_empty_scope_when_nothing_changed(self, tmp_path):
        repo = _git_repo(tmp_path)
        pkg = _write_package(repo, base=CLEAN)
        _git(repo, "add", "-A")
        _git(repo, "commit", "-qm", "seed")
        assert changed_scope([pkg], "HEAD") == set()


class TestChangedCli:
    def _seed_repo(self, tmp_path):
        repo = _git_repo(tmp_path)
        pkg = _write_package(repo, stale=VIOLATION, fresh=CLEAN)
        _git(repo, "add", "-A")
        _git(repo, "commit", "-qm", "seed")
        return repo, pkg

    def test_unchanged_files_are_not_reported(self, tmp_path, capsys):
        repo, pkg = self._seed_repo(tmp_path)
        # `stale.py` has a violation but predates the change; only the
        # touched clean file is in scope, so the run is clean
        (pkg / "fresh.py").write_text(CLEAN + "\n\ndef triple(x):\n"
                                      "    return 3 * x\n")
        assert main(["lint", "--changed", "HEAD", str(pkg)]) == 0
        captured = capsys.readouterr()
        assert "stale.py" not in captured.out
        assert "scoped to" in captured.err

    def test_changed_file_findings_are_reported(self, tmp_path, capsys):
        repo, pkg = self._seed_repo(tmp_path)
        (pkg / "fresh.py").write_text(VIOLATION)
        assert main(["lint", "--changed", "HEAD", str(pkg)]) == 1
        captured = capsys.readouterr()
        assert "fresh.py" in captured.out
        assert "unseeded-rng" in captured.out
        assert "stale.py" not in captured.out

    def test_dependents_of_changed_files_are_in_scope(self, tmp_path,
                                                      capsys):
        repo = _git_repo(tmp_path)
        pkg = _write_package(
            repo, base=CLEAN,
            dependent="from pkg.base import double\n" + VIOLATION)
        _git(repo, "add", "-A")
        _git(repo, "commit", "-qm", "seed")
        # only base.py changes, but dependent.py imports it: its finding
        # must still be reported
        (pkg / "base.py").write_text(CLEAN + "\n\ndef triple(x):\n"
                                     "    return 3 * x\n")
        assert main(["lint", "--changed", "HEAD", str(pkg)]) == 1
        captured = capsys.readouterr()
        assert "dependent.py" in captured.out

    def test_no_changes_short_circuits(self, tmp_path, capsys):
        repo, pkg = self._seed_repo(tmp_path)
        assert main(["lint", "--changed", "HEAD", str(pkg)]) == 0
        captured = capsys.readouterr()
        assert "no linted files changed" in captured.err
        assert "stale.py" not in captured.out


class TestJsonReport:
    def test_report_written_even_when_scope_is_empty(self, tmp_path,
                                                     capsys):
        repo = _git_repo(tmp_path)
        pkg = _write_package(repo, base=CLEAN)
        _git(repo, "add", "-A")
        _git(repo, "commit", "-qm", "seed")
        report = tmp_path / "report.json"
        assert main(["lint", "--changed", "HEAD",
                     "--json-report", str(report), str(pkg)]) == 0
        payload = json.loads(report.read_text())
        assert payload["count"] == 0
        assert payload["findings"] == []

    def test_report_lists_findings_as_json(self, tmp_path, capsys):
        pkg = _write_package(tmp_path, bad=VIOLATION)
        report = tmp_path / "report.json"
        assert main(["lint", "--json-report", str(report),
                     str(pkg)]) == 1
        payload = json.loads(report.read_text())
        findings = payload["findings"]
        assert payload["count"] == len(findings) > 0
        assert any(entry["rule"] == "unseeded-rng" for entry in findings)
        assert all({"path", "line", "rule", "severity"}
                   <= set(entry) for entry in findings)

    def test_missing_parent_directories_are_created(self, tmp_path,
                                                    capsys):
        pkg = _write_package(tmp_path, base=CLEAN)
        report = tmp_path / "out" / "deeper" / "report.json"
        assert main(["lint", "--json-report", str(report),
                     str(pkg)]) == 0
        payload = json.loads(report.read_text())
        assert payload["count"] == 0

    def test_unwritable_report_path_is_a_config_error(self, tmp_path,
                                                      capsys):
        pkg = _write_package(tmp_path, base=CLEAN)
        # /dev/null is a file, so it cannot be a parent directory
        assert main(["lint", "--json-report", "/dev/null/report.json",
                     str(pkg)]) == 2
        captured = capsys.readouterr()
        assert "cannot write --json-report" in captured.err

    def test_findings_are_canonically_sorted(self, tmp_path, capsys):
        pkg = _write_package(tmp_path, zeta=VIOLATION, alpha=VIOLATION)
        report = tmp_path / "report.json"
        assert main(["lint", "--json-report", str(report),
                     str(pkg)]) == 1
        entries = [(e["path"], e["line"], e["col"], e["rule"])
                   for e in json.loads(report.read_text())["findings"]]
        assert entries == sorted(entries)
        assert len(entries) >= 2
