"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["render", "doom"])

    def test_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["render", "cod2", "--scheme", "x"])

    def test_defaults(self):
        args = build_parser().parse_args(["render", "cod2"])
        assert args.scale == "tiny"
        assert args.gpus == 8
        assert args.scheme == "chopin+sched"


class TestCommands:
    def test_render(self, capsys, tmp_path):
        ppm = tmp_path / "frame.ppm"
        assert main(["render", "cod2", "--scheme", "duplication",
                     "--ppm", str(ppm)]) == 0
        out = capsys.readouterr().out
        assert "frame time" in out
        assert "geometry" in out
        assert ppm.exists()
        assert ppm.read_bytes().startswith(b"P6")

    def test_compare(self, capsys):
        assert main(["compare", "cod2",
                     "--schemes", "chopin+sched"]) == 0
        out = capsys.readouterr().out
        assert "duplication" in out and "chopin+sched" in out

    def test_inspect(self, capsys):
        assert main(["inspect", "cod2"]) == 0
        out = capsys.readouterr().out
        assert "composition groups" in out
        assert "mode=opaque" in out
        assert "histogram" in out

    def test_export_round_trip(self, capsys, tmp_path):
        path = tmp_path / "trace.npz"
        assert main(["export", "cod2", str(path)]) == 0
        assert path.exists()
        assert "round-trip verified" in capsys.readouterr().out

    def test_figures_table2(self, capsys):
        assert main(["figures", "table2"]) == 0
        assert "Number of GPUs" in capsys.readouterr().out

    def test_figures_subset(self, capsys):
        assert main(["figures", "fig17", "--benchmarks", "cod2"]) == 0
        assert "cod2" in capsys.readouterr().out

    def test_gpu_count_flag(self, capsys):
        assert main(["render", "cod2", "--gpus", "2",
                     "--scheme", "duplication"]) == 0
        assert "2 GPUs" in capsys.readouterr().out


class TestTimelineCommand:
    def test_timeline_renders_gantt(self, capsys):
        assert main(["timeline", "wolf", "--gpus", "2",
                     "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "gpu0" in out and "gpu1" in out
        assert "cycles" in out

    def test_timeline_with_links(self, capsys):
        assert main(["timeline", "wolf", "--gpus", "2", "--width", "40",
                     "--links"]) == 0
        assert "link" in capsys.readouterr().out


class TestExportResultsCommand:
    def test_csv(self, capsys, tmp_path):
        path = tmp_path / "r.csv"
        assert main(["export-results", str(path),
                     "--benchmarks", "wolf",
                     "--schemes", "chopin+sched"]) == 0
        assert path.exists()
        header = path.read_text().splitlines()[0]
        assert "speedup_vs_duplication" in header

    def test_json(self, tmp_path):
        path = tmp_path / "r.json"
        assert main(["export-results", str(path),
                     "--benchmarks", "wolf",
                     "--schemes", "gpupd"]) == 0
        import json
        rows = json.loads(path.read_text())
        assert {r["scheme"] for r in rows} == {"duplication", "gpupd"}
