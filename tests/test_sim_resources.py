"""Simulation resources: FIFO resources, stores, barriers, countdowns."""

import pytest

from repro.errors import SimulationError
from repro.sim import Barrier, Countdown, Resource, Store


class TestResource:
    def test_grants_up_to_capacity(self, sim):
        res = Resource(sim, capacity=2)
        first, second, third = res.request(), res.request(), res.request()
        assert first.triggered and second.triggered
        assert not third.triggered

    def test_release_grants_next_in_fifo_order(self, sim):
        res = Resource(sim, capacity=1)
        held = res.request()
        waiters = [res.request() for _ in range(3)]
        res.release(held)
        assert waiters[0].triggered
        assert not waiters[1].triggered

    def test_release_unknown_request_raises(self, sim):
        res = Resource(sim)
        stranger = Resource(sim).request()
        with pytest.raises(SimulationError):
            res.release(stranger)

    def test_cancel_removes_waiter(self, sim):
        res = Resource(sim)
        held = res.request()
        waiter = res.request()
        res.cancel(waiter)
        res.release(held)
        assert not waiter.triggered
        assert res.count == 0

    def test_serializes_critical_section(self, sim):
        res = Resource(sim)
        spans = []

        def worker(duration):
            req = res.request()
            yield req
            start = sim.now
            yield sim.timeout(duration)
            spans.append((start, sim.now))
            res.release(req)

        for duration in (5, 3, 2):
            sim.process(worker(duration))
        sim.run()
        # no overlap: each starts when the previous finished
        assert spans == [(0.0, 5.0), (5.0, 8.0), (8.0, 10.0)]

    def test_zero_capacity_rejected(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("x")
        got = store.get()
        assert got.triggered and got.value == "x"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        received = []

        def consumer():
            item = yield store.get()
            received.append((sim.now, item))

        def producer():
            yield sim.timeout(6)
            store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert received == [(6.0, "late")]

    def test_fifo_ordering(self, sim):
        store = Store(sim)
        for i in range(3):
            store.put(i)
        values = [store.get().value for _ in range(3)]
        assert values == [0, 1, 2]
        assert len(store) == 0


class TestBarrier:
    def test_releases_all_when_full(self, sim):
        barrier = Barrier(sim, parties=3)
        times = []

        def party(delay):
            yield sim.timeout(delay)
            yield barrier.wait()
            times.append(sim.now)

        for delay in (1, 5, 9):
            sim.process(party(delay))
        sim.run()
        assert times == [9.0, 9.0, 9.0]

    def test_reusable_across_cycles(self, sim):
        barrier = Barrier(sim, parties=2)
        log = []

        def party(name):
            for round_index in range(2):
                yield sim.timeout(1)
                yield barrier.wait()
                log.append((round_index, name))

        sim.process(party("a"))
        sim.process(party("b"))
        sim.run()
        assert sorted(log) == [(0, "a"), (0, "b"), (1, "a"), (1, "b")]

    def test_rejects_zero_parties(self, sim):
        with pytest.raises(SimulationError):
            Barrier(sim, parties=0)


class TestCountdown:
    def test_fires_after_count_arrivals(self, sim):
        latch = Countdown(sim, 3)
        latch.arrive()
        latch.arrive()
        assert not latch.event.triggered
        latch.arrive()
        assert latch.event.triggered

    def test_zero_count_fires_immediately(self, sim):
        latch = Countdown(sim, 0)
        assert latch.event.triggered

    def test_extra_arrival_raises(self, sim):
        latch = Countdown(sim, 1)
        latch.arrive()
        with pytest.raises(SimulationError):
            latch.arrive()


class TestPriorityResource:
    def test_high_priority_granted_first(self, sim):
        from repro.sim import PriorityResource
        res = PriorityResource(sim)
        held = res.request()
        low = res.request(priority=5)
        high = res.request(priority=1)
        res.release(held)
        assert high.triggered
        assert not low.triggered

    def test_ties_break_fifo(self, sim):
        from repro.sim import PriorityResource
        res = PriorityResource(sim)
        held = res.request()
        first = res.request(priority=2)
        second = res.request(priority=2)
        res.release(held)
        assert first.triggered and not second.triggered

    def test_immediate_grant_below_capacity(self, sim):
        from repro.sim import PriorityResource
        res = PriorityResource(sim, capacity=2)
        assert res.request(priority=9).triggered
        assert res.request(priority=9).triggered

    def test_release_unknown_rejected(self, sim):
        from repro.sim import PriorityResource
        from repro.errors import SimulationError
        a, b = PriorityResource(sim), PriorityResource(sim)
        stranger = b.request()
        with pytest.raises(SimulationError):
            a.release(stranger)

    def test_preempts_bulk_traffic_pattern(self, sim):
        """Usage sketch: urgent messages overtake queued bulk messages."""
        from repro.sim import PriorityResource
        res = PriorityResource(sim)
        order = []

        def sender(name, priority, delay):
            yield sim.timeout(delay)
            request = res.request(priority=priority)
            yield request
            yield sim.timeout(10)
            order.append(name)
            res.release(request)

        sim.process(sender("bulk-a", 5, 0))
        sim.process(sender("bulk-b", 5, 1))
        sim.process(sender("urgent", 0, 2))
        sim.run()
        assert order == ["bulk-a", "urgent", "bulk-b"]

    def test_release_out_of_order_grants_by_priority(self, sim):
        from repro.sim import PriorityResource
        res = PriorityResource(sim, capacity=2)
        first = res.request(priority=0)
        second = res.request(priority=0)
        bulk = res.request(priority=5)
        urgent = res.request(priority=1)
        # releasing the *later* grant first: the freed unit must go to
        # the most urgent waiter, not follow arrival or release order
        res.release(second)
        assert urgent.triggered
        assert not bulk.triggered
        res.release(first)
        assert bulk.triggered
        assert res.count == 2
        res.release(urgent)
        res.release(bulk)
        assert res.count == 0


class TestFailStopCleanup:
    """Fail-stop (``Process.kill``) interactions with resource state."""

    def test_wait_after_party_killed_deadlocks_with_names(self, sim):
        barrier = Barrier(sim, parties=2, name="frame")

        def waiter():
            yield barrier.wait()

        def doomed():
            yield sim.timeout(5)
            yield barrier.wait()

        sim.process(waiter(), name="survivor")
        victim = sim.process(doomed(), name="victim")
        victim.kill()
        # the killed party never arrives, so the barrier can never fill:
        # the drain watchdog must name the stranded waiter
        with pytest.raises(SimulationError, match="survivor"):
            sim.run()

    def test_waiters_on_killed_process_resume(self, sim):
        def victim_body():
            yield sim.timeout(100)

        victim = sim.process(victim_body(), name="victim")
        observed = []

        def supervisor():
            value = yield victim
            observed.append(value)

        sim.process(supervisor(), name="supervisor")
        victim.kill("fail-stop")
        sim.run()
        assert observed == ["fail-stop"]

    def test_kill_mid_hold_releases_port_via_finally(self, sim):
        res = Resource(sim, name="port")
        finished = []

        def holder():
            req = res.request()
            yield req
            try:
                yield sim.timeout(100)
            finally:
                res.withdraw(req)

        def waiter():
            yield sim.timeout(1)
            req = res.request()
            yield req
            res.release(req)
            finished.append(sim.now)

        victim = sim.process(holder(), name="victim")
        sim.process(waiter(), name="waiter")

        def killer():
            yield sim.timeout(10)
            victim.kill()

        sim.process(killer(), name="killer")
        sim.run()
        # GeneratorExit ran the holder's finally: the port freed at the
        # kill instant and the queued waiter was granted, not stranded
        assert finished == [10.0]
        assert res.count == 0
        assert victim.killed

    def test_kill_while_queued_withdraws_the_request(self, sim):
        res = Resource(sim, name="port")

        def hold_then_release(duration):
            # the interconnect idiom: the grant-yield sits *inside* the
            # try so a kill while still queued reaches the withdraw
            req = res.request()
            try:
                yield req
                yield sim.timeout(duration)
            finally:
                res.withdraw(req)

        sim.process(hold_then_release(20), name="holder")
        victim = sim.process(hold_then_release(5), name="victim")
        sim.process(hold_then_release(5), name="survivor")

        def killer():
            yield sim.timeout(1)
            victim.kill()

        sim.process(killer(), name="killer")
        # if the victim's queued request were left in the wait queue, the
        # holder's release would grant a dead process and the survivor
        # would deadlock; the finally's withdraw() cancels it instead
        sim.run()
        assert res.count == 0
        assert res.queue_length == 0
        assert victim.killed
