"""The composition-group workflow (Fig 7) and hardware-cost models."""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core import (CompositionGroup, GroupMode, plan_frame, plan_group,
                        split_into_groups, summarize_plan,
                        composition_scheduler_size_bytes,
                        composition_scheduler_traffic_bytes,
                        draw_scheduler_size_bytes,
                        draw_scheduler_traffic_bytes)
from repro.errors import ConfigError
from repro.geometry import BlendOp, DepthFunc, DrawCommand, RenderState


def draw(draw_id, tris=100, **state_kwargs):
    positions = np.zeros((tris, 3, 3), dtype=np.float32)
    colors = np.zeros((tris, 3, 4), dtype=np.float32)
    return DrawCommand(draw_id=draw_id, positions=positions, colors=colors,
                       state=RenderState(**state_kwargs))


def group(draws, index=0):
    return CompositionGroup(index=index, draws=draws)


@pytest.fixture()
def config():
    return SystemConfig(num_gpus=4, composition_threshold=64)


class TestPlanGroup:
    def test_small_group_reverts_to_duplication(self, config):
        plan = plan_group(group([draw(0, tris=10)]), config)
        assert plan.mode is GroupMode.DUPLICATE
        assert not plan.accelerated

    def test_large_opaque_group_parallel(self, config):
        plan = plan_group(group([draw(0, tris=100)]), config)
        assert plan.mode is GroupMode.OPAQUE_PARALLEL
        assert plan.accelerated

    def test_transparent_group_split_evenly(self, config):
        draws = [draw(i, tris=50, blend_op=BlendOp.OVER, depth_write=False)
                 for i in range(2)]
        plan = plan_group(group(draws), config)
        assert plan.mode is GroupMode.TRANSPARENT_PARALLEL
        assert plan.needs_extra_target
        counts = [sum(d.num_triangles for d in c) for c in plan.chunks]
        assert sum(counts) == 100
        assert max(counts) - min(counts) <= 1

    def test_depth_write_off_forces_duplication(self, config):
        plan = plan_group(group([draw(0, tris=100, depth_write=False)]),
                          config)
        assert plan.mode is GroupMode.DUPLICATE

    def test_order_dependent_depth_func_forces_duplication(self, config):
        plan = plan_group(
            group([draw(0, tris=100, depth_func=DepthFunc.EQUAL)]), config)
        assert plan.mode is GroupMode.DUPLICATE

    def test_explicit_threshold_overrides_config(self, config):
        plan = plan_group(group([draw(0, tris=100)]), config, threshold=200)
        assert plan.mode is GroupMode.DUPLICATE


class TestPlanFrame:
    def test_summary_counts(self, config, micro_trace):
        plans = plan_frame(split_into_groups(micro_trace.frame), config)
        summary = summarize_plan(plans)
        assert summary.total_groups == len(plans)
        assert summary.accelerated_groups + summary.duplicated_groups \
            == summary.total_groups
        assert 0.0 < summary.triangle_coverage <= 1.0

    def test_coverage_shrinks_with_threshold(self, config, micro_trace):
        groups = split_into_groups(micro_trace.frame)
        low = summarize_plan(plan_frame(groups, config, threshold=8))
        high = summarize_plan(plan_frame(groups, config, threshold=400))
        assert high.triangle_coverage <= low.triangle_coverage


class TestHardwareCosts:
    def test_paper_numbers_at_8_gpus(self):
        assert draw_scheduler_size_bytes(8) == 128
        assert composition_scheduler_size_bytes(8) == 27
        assert composition_scheduler_traffic_bytes(8) == 512

    def test_draw_scheduler_traffic(self):
        # 4 KB per million triangles at interval 1024 (paper §VI-D)
        assert draw_scheduler_traffic_bytes(1_000_000, 1024) \
            == pytest.approx(4000, rel=0.05)
        assert draw_scheduler_traffic_bytes(10, 1) == 40

    def test_scaling_with_gpu_count(self):
        assert draw_scheduler_size_bytes(16) == 256
        assert composition_scheduler_size_bytes(16) \
            > composition_scheduler_size_bytes(8)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            draw_scheduler_size_bytes(0)
        with pytest.raises(ConfigError):
            draw_scheduler_traffic_bytes(100, 0)
        with pytest.raises(ConfigError):
            composition_scheduler_traffic_bytes(-1)
