"""SFR scheme correctness and consistency.

The central invariant: **every scheme renders the exact same final image as
a single GPU**, for every benchmark. On top of that, per-scheme stats must
be internally consistent (triangle totals, fragment counts, traffic).
"""

import numpy as np
import pytest

from repro.harness import SCHEMES, build_scheme, make_setup
from repro.sfr import render_reference_image
from repro.stats import (STAGE_COMPOSITION, STAGE_DISTRIBUTION,
                         STAGE_GEOMETRY, STAGE_PROJECTION,
                         TRAFFIC_COMPOSITION, TRAFFIC_PRIMITIVES)
from repro.traces import load_benchmark

BENCH_SUBSET = ("cod2", "grid", "nfs")


@pytest.fixture(scope="module")
def setup():
    return make_setup("tiny", num_gpus=8)


@pytest.fixture(scope="module")
def references(setup):
    return {bench: render_reference_image(load_benchmark(bench, "tiny"),
                                          setup.config)
            for bench in BENCH_SUBSET}


@pytest.fixture(scope="module")
def results(setup):
    out = {}
    for bench in BENCH_SUBSET:
        trace = load_benchmark(bench, "tiny")
        out[bench] = {name: build_scheme(name, setup).run(trace)
                      for name in SCHEMES}
    return out


class TestImageCorrectness:
    @pytest.mark.parametrize("bench", BENCH_SUBSET)
    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_final_image_matches_reference(self, results, references,
                                           bench, scheme):
        image = results[bench][scheme].image
        error = float(np.abs(image.color - references[bench].color).max())
        assert error < 3e-3, f"{scheme} on {bench} deviates by {error}"

    def test_chopin_variants_share_functional_results(self, results):
        """Same draw scheduler => identical images bit-for-bit."""
        for bench in BENCH_SUBSET:
            a = results[bench]["chopin"].image
            b = results[bench]["chopin+sched"].image
            assert np.array_equal(a.color, b.color)


class TestTimingSanity:
    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_positive_finite_frame_time(self, results, scheme):
        for bench in BENCH_SUBSET:
            cycles = results[bench][scheme].frame_cycles
            assert np.isfinite(cycles) and cycles > 0

    def test_frame_time_bounded_by_engine_work(self, results):
        """Wall-clock can never be shorter than any single engine's serial
        work (geometry and fragment engines each serialize per GPU;
        composition may overlap rendering, so total busy is *not* a bound).
        """
        for bench in BENCH_SUBSET:
            for scheme, result in results[bench].items():
                for gpu_stats in result.stats.gpus:
                    geometry = gpu_stats.stage_cycles.get(STAGE_GEOMETRY, 0)
                    fragment = gpu_stats.stage_cycles.get("fragment", 0)
                    bound = max(geometry, fragment)
                    assert result.frame_cycles >= bound * 0.999, \
                        f"{scheme}/{bench}"

    def test_ideal_links_never_slower(self, results):
        for bench in BENCH_SUBSET:
            assert results[bench]["chopin-ideal"].frame_cycles \
                <= results[bench]["chopin+sched"].frame_cycles * 1.001
            assert results[bench]["gpupd-ideal"].frame_cycles \
                <= results[bench]["gpupd"].frame_cycles * 1.001


class TestStatsConsistency:
    def test_duplication_processes_all_triangles_everywhere(self, results,
                                                            setup):
        for bench in BENCH_SUBSET:
            trace = load_benchmark(bench, "tiny")
            stats = results[bench]["duplication"].stats
            for gpu_stats in stats.gpus:
                assert gpu_stats.triangles_processed == trace.num_triangles

    def test_chopin_avoids_redundant_geometry(self, results):
        """CHOPIN's total triangle work is far below duplication's
        (only duplicate-mode groups are redundant)."""
        for bench in BENCH_SUBSET:
            dup = results[bench]["duplication"].stats.total_triangles
            chopin = results[bench]["chopin+sched"].stats.total_triangles
            assert chopin < dup * 0.5

    def test_chopin_extra_fragments_bounded(self, results):
        """Fig 15: CHOPIN shades more fragments, but only modestly."""
        for bench in BENCH_SUBSET:
            dup = results[bench]["duplication"].stats.total_fragments_passed
            chopin = results[bench]["chopin+sched"] \
                .stats.total_fragments_passed
            assert dup <= chopin <= dup * 1.6

    def test_gpupd_fragments_match_duplication(self, results):
        """Sort-first: GPUpd's depth behaviour equals duplication's."""
        for bench in BENCH_SUBSET:
            dup = results[bench]["duplication"].stats
            gpupd = results[bench]["gpupd"].stats
            assert gpupd.total_fragments_passed == dup.total_fragments_passed

    def test_stage_attribution_per_scheme(self, results):
        for bench in BENCH_SUBSET:
            dup_stages = results[bench]["duplication"] \
                .stats.stage_cycle_totals()
            assert STAGE_PROJECTION not in dup_stages
            assert STAGE_COMPOSITION not in dup_stages
            gpupd_stages = results[bench]["gpupd"].stats.stage_cycle_totals()
            assert gpupd_stages.get(STAGE_PROJECTION, 0) > 0
            assert gpupd_stages.get(STAGE_DISTRIBUTION, 0) > 0
            chopin_stages = results[bench]["chopin+sched"] \
                .stats.stage_cycle_totals()
            assert chopin_stages.get(STAGE_COMPOSITION, 0) > 0
            assert STAGE_DISTRIBUTION not in chopin_stages

    def test_traffic_categories(self, results):
        for bench in BENCH_SUBSET:
            gpupd = results[bench]["gpupd"].stats
            assert gpupd.traffic_total(TRAFFIC_PRIMITIVES) > 0
            assert gpupd.traffic_total(TRAFFIC_COMPOSITION) == 0
            chopin = results[bench]["chopin+sched"].stats
            assert chopin.traffic_total(TRAFFIC_COMPOSITION) > 0
            assert chopin.traffic_total(TRAFFIC_PRIMITIVES) == 0

    def test_geometry_share_grows_with_gpu_count(self):
        trace = load_benchmark("cod2", "tiny")
        shares = []
        for n in (1, 4, 8):
            setup_n = make_setup("tiny", num_gpus=n)
            result = build_scheme("duplication", setup_n).run(trace)
            shares.append(result.stats.stage_fraction(STAGE_GEOMETRY))
        assert shares[0] < shares[1] < shares[2]


class TestSingleGPUDegenerate:
    """Every scheme must run (and agree) on a 1-GPU 'system'."""

    @pytest.mark.parametrize("scheme", ["duplication", "chopin+sched"])
    def test_single_gpu_runs(self, scheme):
        setup = make_setup("tiny", num_gpus=1)
        trace = load_benchmark("cod2", "tiny")
        result = build_scheme(scheme, setup).run(trace)
        reference = render_reference_image(trace, setup.config)
        assert np.abs(result.image.color - reference.color).max() < 3e-3
