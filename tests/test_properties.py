"""Property-based tests on core invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.composition import (SubImage, composite_opaque,
                               composite_transparent,
                               composite_transparent_tree, depth_merge)
from repro.framebuffer import SurfacePool
from repro.geometry import BlendOp, DrawCommand, RenderState
from repro.raster import GraphicsPipeline, TileGrid
from repro.raster.rasterizer import rasterize_triangle
from repro.sim import Simulator
from repro.core.draw_scheduler import LeastRemainingTrianglesScheduler

colors_arr = hnp.arrays(np.float32, (4, 4, 4),
                        elements=st.floats(0, 1, width=32))
depth_arr = hnp.arrays(np.float32, (4, 4),
                       elements=st.floats(0, 1, width=32))
touched_arr = hnp.arrays(np.bool_, (4, 4))


@st.composite
def subimages(draw):
    return SubImage(color=draw(colors_arr), depth=draw(depth_arr),
                    touched=draw(touched_arr))


class TestCompositionProperties:
    @given(a=subimages(), b=subimages(), c=subimages())
    @settings(max_examples=60, deadline=None)
    def test_depth_merge_associative(self, a, b, c):
        left = depth_merge(depth_merge(a, b), c)
        right = depth_merge(a, depth_merge(b, c))
        assert (left.touched == right.touched).all()
        # depth is only meaningful where some input drew
        assert np.allclose(left.depth[left.touched],
                           right.depth[right.touched])

    @given(images=st.lists(subimages(), min_size=1, max_size=6),
           seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_opaque_composition_order_invariant(self, images, seed):
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(images)).tolist()
        a = composite_opaque(images)
        b = composite_opaque(images, order=order)
        assert (a.touched == b.touched).all()
        assert np.allclose(a.depth[a.touched], b.depth[b.touched])

    @given(images=st.lists(subimages(), min_size=2, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_tree_reduction_matches_sequential(self, images):
        tree = composite_transparent_tree(images, BlendOp.OVER)
        seq = composite_transparent(images, BlendOp.OVER)
        assert np.allclose(tree.color, seq.color, atol=1e-4)


class TestRasterProperties:
    @given(coords=st.lists(st.floats(-10, 40, allow_nan=False), min_size=6,
                           max_size=6),
           depths=st.lists(st.floats(0, 1, width=32), min_size=3,
                           max_size=3))
    @settings(max_examples=80, deadline=None)
    def test_fragments_always_on_screen_and_bounded(self, coords, depths):
        xy = np.array(coords, dtype=np.float32).reshape(3, 2)
        depth = np.array(depths, dtype=np.float32)
        colors = np.ones((3, 4), dtype=np.float32)
        frags = rasterize_triangle(xy, depth, colors, 32, 32)
        if frags.count:
            assert frags.xs.min() >= 0 and frags.xs.max() < 32
            assert frags.ys.min() >= 0 and frags.ys.max() < 32
            # no duplicate pixels within one triangle
            assert len({(x, y) for x, y in zip(frags.xs.tolist(),
                                               frags.ys.tolist())}) \
                == frags.count
            assert frags.depths.min() >= min(depths) - 1e-4
            assert frags.depths.max() <= max(depths) + 1e-4

    @given(seed=st.integers(0, 50), num_gpus=st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_owner_attribution_partitions_fragments(self, seed, num_gpus):
        rng = np.random.default_rng(seed)
        positions = rng.uniform(-1, 1, (6, 3, 3)).astype(np.float32)
        positions[..., 2] = rng.uniform(0.1, 0.9, (6, 3)).astype(np.float32)
        colors = rng.random((6, 3, 4), dtype=np.float32)
        draw = DrawCommand(draw_id=0, positions=positions, colors=colors)
        grid = TileGrid(32, 32, tile_size=8)
        pipe = GraphicsPipeline(32, 32)
        pool = SurfacePool(32, 32)
        metrics = pipe.execute_draw(draw, pool,
                                    owner_map=grid.owner_map(num_gpus),
                                    num_owners=num_gpus)
        assert metrics.generated_by_owner.sum() \
            == metrics.fragments_generated
        assert metrics.passed_by_owner.sum() == metrics.fragments_passed


class TestSchedulerProperties:
    @given(sizes=st.lists(st.integers(1, 500), min_size=1, max_size=60),
           num_gpus=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_least_remaining_never_exceeds_prefix_bound(self, sizes,
                                                        num_gpus):
        """Greedy least-loaded keeps the max load within (ideal + biggest
        item), the classic list-scheduling guarantee."""
        sched = LeastRemainingTrianglesScheduler(num_gpus)
        loads = [0] * num_gpus
        for size in sizes:
            loads[sched.pick(size)] += size
        ideal = sum(sizes) / num_gpus
        assert max(loads) <= ideal + max(sizes)


class TestSimProperties:
    @given(delays=st.lists(st.floats(0, 100, allow_nan=False), min_size=1,
                           max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_clock_never_goes_backwards(self, delays):
        sim = Simulator()
        observed = []

        def proc(delay):
            yield sim.timeout(delay)
            observed.append(sim.now)

        for delay in delays:
            sim.process(proc(delay))
        sim.run()
        assert observed == sorted(observed)
        assert sim.now == max(delays)
