"""Error-contract pass tests: fixtures per rule, exit-code registry,
seeded mutations.

The fixture tests pin the contract model (taxonomy closure, ladder
resolution, allowlist, silent-handler definition); the registry tests pin
``repro.errors.exit_code_for`` and the ``main()`` ladder; the meta-tests
copy ``src/repro`` and seed it with each decay mode the pass exists to
catch — a swallowed ReproError, an unmapped class, an exit-code
collision, a bare ``raise Exception`` and a stale exit-code table — and
require the deep lint to find it.
"""

import pathlib
import shutil
import textwrap

from repro import cli
from repro.analysis import lint_paths
from repro.analysis.contract import (RULE_COLLISION, RULE_GENERIC,
                                     RULE_SWALLOWED, RULE_UNDOCUMENTED,
                                     RULE_UNMAPPED, ContractChecker)
from repro.analysis.flow import Project
from repro.analysis.simlint import LintModule
from repro.errors import (EXIT_CONFIG, EXIT_DEGRADED, EXIT_ERROR,
                          EXIT_FAULT, EXIT_FINGERPRINT, EXIT_SCHEDULING,
                          ConfigError, FaultError, RaceConditionError,
                          ReproError, SchedulingError,
                          TraceFingerprintError, WatchdogError,
                          exit_code_for)

REPO_SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

TAXONOMY = textwrap.dedent("""
    class ReproError(Exception):
        pass

    class ConfigError(ReproError):
        pass

    class FaultError(ReproError):
        pass

    EXIT_ERROR = 1
    EXIT_CONFIG = 2
    EXIT_FAULT = 3

    EXIT_CODES = ((ConfigError, EXIT_CONFIG), (FaultError, EXIT_FAULT),
                  (ReproError, EXIT_ERROR))
""")


def project_of(*named_sources):
    return Project.from_modules(
        (name, False, LintModule(f"{name}.py", textwrap.dedent(src)))
        for name, src in named_sources)


def contract_findings(*named_sources):
    return ContractChecker(project_of(*named_sources)).run()


def rules_of(findings):
    return {finding.rule for finding in findings}


class TestTaxonomyAndLadder:
    def test_clean_fixture_has_no_findings(self):
        assert contract_findings(("errs", TAXONOMY)) == []

    def test_project_without_taxonomy_is_ignored(self):
        # without a ReproError root even `except Exception: pass` is out
        # of scope (unrelated fixture trees must stay quiet)
        findings = contract_findings(("mod", """
            def load(path):
                try:
                    return open(path).read()
                except Exception:
                    pass
        """))
        assert findings == []

    def test_unmapped_subclass_flags(self):
        findings = contract_findings(
            ("errs", TAXONOMY + textwrap.dedent("""
            class TraceError(ReproError):
                pass
        """)))
        assert rules_of(findings) == {RULE_UNMAPPED}
        assert "TraceError" in findings[0].message

    def test_allowlisted_subclass_is_clean(self):
        findings = contract_findings(
            ("errs", TAXONOMY + textwrap.dedent("""
            class TraceError(ReproError):
                pass

            GENERIC_EXIT = frozenset({"TraceError"})
        """)))
        assert findings == []

    def test_allowlist_covers_descendants(self):
        findings = contract_findings(
            ("errs", TAXONOMY + textwrap.dedent("""
            class TraceError(ReproError):
                pass

            class TraceHeaderError(TraceError):
                pass

            GENERIC_EXIT = frozenset({"TraceError"})
        """)))
        assert findings == []

    def test_subclass_of_mapped_class_inherits_mapping(self):
        findings = contract_findings(
            ("errs", TAXONOMY + textwrap.dedent("""
            class FingerprintError(ConfigError):
                pass
        """)))
        assert findings == []

    def test_duplicate_code_collides(self):
        findings = contract_findings(("errs", """
            class ReproError(Exception):
                pass

            class ConfigError(ReproError):
                pass

            class FaultError(ReproError):
                pass

            EXIT_CODES = ((ConfigError, 2), (FaultError, 2),
                          (ReproError, 1))
        """))
        assert rules_of(findings) == {RULE_COLLISION}
        assert "assigned to both" in findings[0].message

    def test_shadowed_entry_collides(self):
        findings = contract_findings(("errs", """
            class ReproError(Exception):
                pass

            class ConfigError(ReproError):
                pass

            EXIT_CODES = ((ReproError, 1), (ConfigError, 2))
        """))
        assert rules_of(findings) == {RULE_COLLISION}
        assert "can never match" in findings[0].message

    def test_taxonomy_resolves_across_modules(self):
        findings = contract_findings(
            ("errs", TAXONOMY),
            ("extra", """
            from errs import ReproError

            class ServeError(ReproError):
                pass
        """))
        assert rules_of(findings) == {RULE_UNMAPPED}
        assert "ServeError" in findings[0].message


class TestHandlersAndRaises:
    def test_silently_swallowed_repro_error_flags(self):
        findings = contract_findings(
            ("errs", TAXONOMY),
            ("mod", """
            def run(job):
                try:
                    job()
                except ReproError:
                    pass
        """))
        assert rules_of(findings) == {RULE_SWALLOWED}

    def test_bare_exception_swallow_flags(self):
        findings = contract_findings(
            ("errs", TAXONOMY),
            ("mod", """
            def run(job):
                try:
                    job()
                except Exception:
                    return None
        """))
        assert rules_of(findings) == {RULE_SWALLOWED}

    def test_handler_that_handles_is_clean(self):
        findings = contract_findings(
            ("errs", TAXONOMY),
            ("mod", """
            def run(job, log):
                try:
                    return job(), True
                except ReproError as exc:
                    log.append(str(exc))
                    return None, False
        """))
        assert findings == []

    def test_handler_that_reraises_is_clean(self):
        findings = contract_findings(
            ("errs", TAXONOMY),
            ("mod", """
            def run(job, cleanup):
                try:
                    return job()
                except ReproError:
                    cleanup()
                    raise
        """))
        assert findings == []

    def test_raise_bare_exception_flags(self):
        findings = contract_findings(
            ("errs", TAXONOMY),
            ("mod", """
            def explode():
                raise Exception("boom")
        """))
        assert rules_of(findings) == {RULE_GENERIC}


class TestDocumentedCodes:
    def test_docstring_missing_a_code_flags(self):
        findings = contract_findings(
            ("errs", TAXONOMY),
            ("front", '''
            """Front end.

            Exit codes
            ==========

            1 library error · 2 bad configuration
            """
        '''))
        assert rules_of(findings) == {RULE_UNDOCUMENTED}
        assert "exit code 3" in findings[0].message

    def test_complete_docstring_is_clean(self):
        findings = contract_findings(
            ("errs", TAXONOMY),
            ("front", '''
            """Front end.

            Exit codes
            ==========

            1 library error · 2 bad configuration · 3 fault
            """
        '''))
        assert findings == []


# ------------------------------------------------- exit-code registry


class TestExitCodeRegistry:
    def test_every_new_class_maps_deterministically(self):
        assert exit_code_for(FaultError("x")) == EXIT_FAULT == 10
        assert exit_code_for(SchedulingError("x")) == EXIT_SCHEDULING == 11
        assert exit_code_for(WatchdogError("x")) == EXIT_DEGRADED

    def test_specific_entries_win_over_ancestors(self):
        assert exit_code_for(TraceFingerprintError("x")) == EXIT_FINGERPRINT
        assert exit_code_for(ConfigError("x")) == EXIT_CONFIG

    def test_generic_allowlisted_classes_fall_through(self):
        assert exit_code_for(RaceConditionError("x")) == EXIT_ERROR
        assert exit_code_for(ReproError("x")) == EXIT_ERROR

    def test_cli_reexports_the_registry(self):
        from repro import errors
        assert cli.EXIT_CODES is errors.EXIT_CODES
        assert cli.EXIT_FAULT == errors.EXIT_FAULT

    def test_main_maps_fault_and_scheduling_errors(self, monkeypatch,
                                                   capsys):
        def raise_fault(args):
            raise FaultError("no survivors")

        def raise_scheduling(args):
            raise SchedulingError("stuck pairing")

        monkeypatch.setitem(cli.COMMANDS, "lint", raise_fault)
        assert cli.main(["lint"]) == EXIT_FAULT
        assert "error [FaultError]: no survivors" in capsys.readouterr().err
        monkeypatch.setitem(cli.COMMANDS, "lint", raise_scheduling)
        assert cli.main(["lint"]) == EXIT_SCHEDULING
        assert "[SchedulingError]" in capsys.readouterr().err


# ------------------------------------------------------- seeded mutations


def _copy_src_repro(tmp_path):
    tree = tmp_path / "repro"
    shutil.copytree(REPO_SRC, tree)
    return tree


def _findings(tree, rule):
    return [f for f in lint_paths([tree], deep=True) if f.rule == rule]


class TestContractMeta:
    def test_catches_seeded_swallowed_error(self, tmp_path):
        tree = _copy_src_repro(tmp_path)
        daemon = tree / "serve" / "daemon.py"
        daemon.write_text(daemon.read_text() + textwrap.dedent("""

            def _swallow_failures(job):
                try:
                    return job()
                except ReproError:
                    pass
        """))
        findings = _findings(tree, RULE_SWALLOWED)
        assert any("daemon.py" in f.path for f in findings)

    def test_catches_seeded_unmapped_class(self, tmp_path):
        tree = _copy_src_repro(tmp_path)
        errors = tree / "errors.py"
        source = errors.read_text()
        mutated = source.replace("(FaultError, EXIT_FAULT),\n", "")
        assert mutated != source
        errors.write_text(mutated)
        findings = _findings(tree, RULE_UNMAPPED)
        assert any("FaultError" in f.message for f in findings)

    def test_catches_seeded_code_collision(self, tmp_path):
        tree = _copy_src_repro(tmp_path)
        errors = tree / "errors.py"
        source = errors.read_text()
        mutated = source.replace("EXIT_SCHEDULING = 11",
                                 "EXIT_SCHEDULING = 10")
        assert mutated != source
        errors.write_text(mutated)
        findings = _findings(tree, RULE_COLLISION)
        assert any("assigned to both" in f.message for f in findings)

    def test_catches_seeded_generic_raise(self, tmp_path):
        tree = _copy_src_repro(tmp_path)
        daemon = tree / "serve" / "daemon.py"
        daemon.write_text(daemon.read_text() + textwrap.dedent("""

            def _explode():
                raise Exception("boom")
        """))
        findings = _findings(tree, RULE_GENERIC)
        assert any("daemon.py" in f.path for f in findings)

    def test_catches_seeded_stale_exit_code_table(self, tmp_path):
        tree = _copy_src_repro(tmp_path)
        cli_path = tree / "cli.py"
        source = cli_path.read_text()
        mutated = source.replace(" · 11 scheduler reached an invalid state",
                                 "")
        assert mutated != source
        cli_path.write_text(mutated)
        findings = _findings(tree, RULE_UNDOCUMENTED)
        assert any("cli.py" in f.path and "exit code 11" in f.message
                   for f in findings)
