"""Direct-send, binary-swap, and radix-k compositing algorithms.

All three must produce exactly the image of the sequential reduction — for
opaque (commutative) and transparent (ordered, associative) operators — and
their transfer logs must match the algorithms' known communication volumes.
"""

import numpy as np
import pytest

from repro.composition import (binary_swap, composite_opaque,
                               composite_transparent, default_factorization,
                               direct_send, radix_k, slice_bounds,
                               total_traffic_pixels)
from repro.composition.compositor import SubImage
from repro.errors import CompositionError
from repro.geometry import BlendOp


def make_images(rng, count, shape=(8, 8)):
    return [SubImage(color=rng.random(shape + (4,), dtype=np.float32),
                     depth=rng.random(shape, dtype=np.float32),
                     touched=np.ones(shape, dtype=bool))
            for _ in range(count)]


class TestDirectSend:
    @pytest.mark.parametrize("count", [1, 2, 3, 5, 8])
    def test_opaque_matches_sequential(self, rng, count):
        images = make_images(rng, count)
        expected = composite_opaque(images)
        composed, _ = direct_send(images)
        assert np.allclose(composed.color, expected.color)
        assert np.allclose(composed.depth, expected.depth)

    @pytest.mark.parametrize("count", [2, 4, 7])
    def test_transparent_matches_sequential(self, rng, count):
        images = make_images(rng, count)
        expected = composite_transparent(images, BlendOp.OVER)
        composed, _ = direct_send(images, op=BlendOp.OVER)
        assert np.allclose(composed.color, expected.color, atol=1e-5)

    def test_transfer_count_all_to_all(self, rng):
        images = make_images(rng, 4)
        _, transfers = direct_send(images)
        # every GPU sends each other GPU's slice: n*(n-1) messages
        assert len(transfers) == 4 * 3

    def test_traffic_volume(self, rng):
        images = make_images(rng, 4, shape=(8, 8))
        _, transfers = direct_send(images)
        # each of 64 pixels travels n-1 times
        assert total_traffic_pixels(transfers) == 64 * 3

    def test_slice_bounds_partition(self):
        bounds = slice_bounds(100, 3)
        assert bounds[0][0] == 0 and bounds[-1][1] == 100
        assert all(a[1] == b[0] for a, b in zip(bounds, bounds[1:]))

    def test_empty_rejected(self):
        with pytest.raises(CompositionError):
            direct_send([])


class TestBinarySwap:
    @pytest.mark.parametrize("count", [2, 4, 8])
    def test_opaque_matches_sequential(self, rng, count):
        images = make_images(rng, count)
        expected = composite_opaque(images)
        composed, _ = binary_swap(images)
        assert np.allclose(composed.color, expected.color)

    @pytest.mark.parametrize("count", [2, 4, 8])
    def test_transparent_matches_sequential(self, rng, count):
        images = make_images(rng, count)
        expected = composite_transparent(images, BlendOp.OVER)
        composed, _ = binary_swap(images, op=BlendOp.OVER)
        assert np.allclose(composed.color, expected.color, atol=1e-4)

    def test_non_power_of_two_rejected(self, rng):
        with pytest.raises(CompositionError):
            binary_swap(make_images(rng, 6))

    def test_round_structure(self, rng):
        images = make_images(rng, 8, shape=(8, 8))
        _, transfers = binary_swap(images)
        rounds = {t.round_index for t in transfers}
        # log2(8) swap rounds plus the final gather round
        assert rounds == {0, 1, 2, 3}

    def test_swap_avoids_receiver_contention(self, rng):
        """Binary-swap's advantage over direct-send is not bytes (both move
        each pixel ~n-1 times in total) but contention: every GPU receives
        exactly one message per swap round, versus n-1 simultaneous
        messages per receiver in single-round direct-send."""
        images = make_images(rng, 8, shape=(8, 8))
        _, ds_transfers = direct_send(images)
        _, bs_transfers = binary_swap(images)
        for round_index in range(3):
            receivers = [t.dst for t in bs_transfers
                         if t.round_index == round_index]
            assert sorted(receivers) == list(range(8))
        ds_receivers = [t.dst for t in ds_transfers]
        assert ds_receivers.count(0) == 7  # all-to-one burst


class TestRadixK:
    def test_default_factorization(self):
        assert default_factorization(8) == [2, 2, 2]
        assert default_factorization(6) == [2, 3]
        assert default_factorization(7) == [7]
        assert default_factorization(1) == [1]

    @pytest.mark.parametrize("count,ks", [(4, [4]), (4, [2, 2]),
                                          (8, [2, 4]), (8, [4, 2]),
                                          (6, [2, 3]), (6, None)])
    def test_opaque_matches_sequential(self, rng, count, ks):
        images = make_images(rng, count)
        expected = composite_opaque(images)
        composed, _ = radix_k(images, k_vector=ks)
        assert np.allclose(composed.color, expected.color)

    @pytest.mark.parametrize("count,ks", [(4, [2, 2]), (8, [2, 4]),
                                          (6, [3, 2])])
    def test_transparent_matches_sequential(self, rng, count, ks):
        images = make_images(rng, count)
        expected = composite_transparent(images, BlendOp.OVER)
        composed, _ = radix_k(images, k_vector=ks, op=BlendOp.OVER)
        assert np.allclose(composed.color, expected.color, atol=1e-4)

    def test_single_round_equals_direct_send_traffic(self, rng):
        images = make_images(rng, 4, shape=(8, 8))
        _, rk = radix_k(images, k_vector=[4])
        _, ds = direct_send(images)
        rk_exchange = [t for t in rk if t.round_index == 0]
        assert total_traffic_pixels(rk_exchange) == total_traffic_pixels(ds)

    def test_bad_factorization_rejected(self, rng):
        with pytest.raises(CompositionError):
            radix_k(make_images(rng, 8), k_vector=[3, 2])

    def test_additive_operator(self, rng):
        images = make_images(rng, 4)
        expected = composite_transparent(images, BlendOp.ADDITIVE)
        composed, _ = radix_k(images, op=BlendOp.ADDITIVE)
        assert np.allclose(composed.color, expected.color, atol=1e-5)
