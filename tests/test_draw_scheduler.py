"""Draw-command schedulers (§IV-D) and the transparent even-split."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (LeastRemainingTrianglesScheduler, OracleLPTScheduler,
                        RoundRobinScheduler, even_split_by_triangles)
from repro.errors import SchedulingError
from repro.geometry import DrawCommand


def make_draw(draw_id, tris):
    positions = np.zeros((tris, 3, 3), dtype=np.float32)
    colors = np.zeros((tris, 3, 4), dtype=np.float32)
    return DrawCommand(draw_id=draw_id, positions=positions, colors=colors)


class TestRoundRobin:
    def test_cycles_through_gpus(self):
        sched = RoundRobinScheduler(3)
        assert [sched.pick(10) for _ in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_ignores_triangle_counts(self):
        sched = RoundRobinScheduler(2)
        assert sched.pick(1000) == 0
        assert sched.pick(1) == 1

    def test_reset(self):
        sched = RoundRobinScheduler(3)
        sched.pick(1)
        sched.reset()
        assert sched.pick(1) == 0


class TestLeastRemaining:
    def test_first_picks_spread(self):
        sched = LeastRemainingTrianglesScheduler(4)
        assert [sched.pick(10) for _ in range(4)] == [0, 1, 2, 3]

    def test_picks_least_loaded(self):
        sched = LeastRemainingTrianglesScheduler(2)
        sched.pick(100)   # gpu0 loaded
        assert sched.pick(10) == 1
        assert sched.pick(10) == 1  # gpu1 at 20 < gpu0 at 100... still least
        assert sched.remaining(1) == 20

    def test_progress_reports_free_capacity(self):
        sched = LeastRemainingTrianglesScheduler(2)
        sched.pick(100)          # gpu0: 100 remaining
        sched.pick(60)           # gpu1: 60 remaining
        sched.report_processed(0, 90)  # gpu0: 10 remaining
        assert sched.pick(1) == 0

    def test_overreporting_rejected(self):
        sched = LeastRemainingTrianglesScheduler(2)
        sched.pick(10)
        with pytest.raises(SchedulingError):
            sched.report_processed(0, 20)

    def test_reset_clears_counters(self):
        sched = LeastRemainingTrianglesScheduler(2)
        sched.pick(50)
        sched.reset()
        assert sched.remaining(0) == 0

    def test_balances_triangles_better_than_round_robin(self):
        rng = np.random.default_rng(42)
        sizes = rng.lognormal(3.0, 1.3, size=200).astype(int) + 1
        least = LeastRemainingTrianglesScheduler(8)
        rr = RoundRobinScheduler(8)
        least_load, rr_load = [0] * 8, [0] * 8
        for size in sizes:
            least_load[least.pick(int(size))] += int(size)
            rr_load[rr.pick(int(size))] += int(size)
        assert max(least_load) < max(rr_load)

    def test_rejects_zero_gpus(self):
        with pytest.raises(SchedulingError):
            LeastRemainingTrianglesScheduler(0)


class TestOracle:
    def test_lpt_by_cost(self):
        sched = OracleLPTScheduler(2, costs=[100.0, 10.0, 10.0])
        assert sched.pick(1) == 0     # heavy job to gpu0
        assert sched.pick(1) == 1
        assert sched.pick(1) == 1     # gpu1 at 20 < gpu0 at 100

    def test_runs_out_of_costs(self):
        sched = OracleLPTScheduler(2, costs=[1.0])
        sched.pick(1)
        with pytest.raises(SchedulingError):
            sched.pick(1)


class TestEvenSplit:
    def test_preserves_order_and_total(self):
        draws = [make_draw(i, t) for i, t in enumerate([10, 20, 5, 15])]
        chunks = even_split_by_triangles(draws, 3)
        total = sum(d.num_triangles for chunk in chunks for d in chunk)
        assert total == 50
        ids = [d.draw_id for chunk in chunks for d in chunk]
        assert ids == sorted(ids)

    def test_splits_large_draw_across_chunks(self):
        draws = [make_draw(0, 100)]
        chunks = even_split_by_triangles(draws, 4)
        counts = [sum(d.num_triangles for d in c) for c in chunks]
        assert counts == [25, 25, 25, 25]

    def test_empty_draw_list(self):
        chunks = even_split_by_triangles([], 4)
        assert chunks == [[], [], [], []]

    def test_fewer_triangles_than_gpus(self):
        draws = [make_draw(0, 2)]
        chunks = even_split_by_triangles(draws, 8)
        assert sum(sum(d.num_triangles for d in c) for c in chunks) == 2

    def test_rejects_zero_gpus(self):
        with pytest.raises(SchedulingError):
            even_split_by_triangles([], 0)

    @given(st.lists(st.integers(1, 200), min_size=1, max_size=30),
           st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_property_balanced_and_order_preserving(self, sizes, num_gpus):
        draws = [make_draw(i, t) for i, t in enumerate(sizes)]
        chunks = even_split_by_triangles(draws, num_gpus)
        counts = [sum(d.num_triangles for d in c) for c in chunks]
        total = sum(sizes)
        assert sum(counts) == total
        # each chunk within one triangle of the ideal share (contiguity
        # with draw splitting allows exact boundaries up to rounding)
        ideal = total / num_gpus
        assert all(abs(c - ideal) <= 1.0 for c in counts)
        # concatenation preserves primitive order per draw id
        ids = [d.draw_id for chunk in chunks for d in chunk]
        assert ids == sorted(ids)


class TestSampledRate:
    def test_lpt_by_frozen_estimates(self):
        from repro.core import SampledRateScheduler
        sched = SampledRateScheduler(2, estimates=[100.0, 10.0, 10.0])
        assert sched.pick(1) == 0
        assert sched.pick(1) == 1
        assert sched.pick(1) == 1

    def test_runs_out(self):
        from repro.core import SampledRateScheduler
        sched = SampledRateScheduler(2, estimates=[1.0])
        sched.pick(1)
        with pytest.raises(SchedulingError):
            sched.pick(1)

    def test_reset(self):
        from repro.core import SampledRateScheduler
        sched = SampledRateScheduler(2, estimates=[5.0, 5.0])
        sched.pick(1)
        sched.reset()
        assert sched.pick(1) == 0
