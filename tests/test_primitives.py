"""Draw-command data model."""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.geometry import (BlendOp, DepthFunc, DrawCommand, RenderState,
                            fullscreen_quad, make_triangle)


def soup(count):
    rng = np.random.default_rng(0)
    positions = rng.random((count, 3, 3), dtype=np.float32)
    colors = rng.random((count, 3, 4), dtype=np.float32)
    return positions, colors


class TestRenderState:
    def test_defaults_are_opaque(self):
        state = RenderState()
        assert state.blend_op is BlendOp.REPLACE
        assert not state.transparent
        assert state.depth_func is DepthFunc.LESS
        assert state.early_z

    def test_blending_implies_transparent(self):
        assert RenderState(blend_op=BlendOp.OVER).transparent
        assert RenderState(blend_op=BlendOp.ADDITIVE).transparent

    def test_frozen(self):
        with pytest.raises(AttributeError):
            RenderState().depth_write = False


class TestDrawCommand:
    def test_counts_triangles(self):
        positions, colors = soup(5)
        draw = DrawCommand(draw_id=1, positions=positions, colors=colors)
        assert draw.num_triangles == 5

    def test_rejects_mismatched_colors(self):
        positions, _ = soup(5)
        _, colors = soup(4)
        with pytest.raises(PipelineError):
            DrawCommand(draw_id=1, positions=positions, colors=colors)

    def test_rejects_bad_position_shape(self):
        with pytest.raises(PipelineError):
            DrawCommand(draw_id=1, positions=np.zeros((5, 3)),
                        colors=np.zeros((5, 3, 4)))

    def test_rejects_nonpositive_costs(self):
        positions, colors = soup(2)
        with pytest.raises(PipelineError):
            DrawCommand(draw_id=1, positions=positions, colors=colors,
                        vertex_cost=0.0)

    def test_split_preserves_order_and_total(self):
        positions, colors = soup(10)
        draw = DrawCommand(draw_id=3, positions=positions, colors=colors)
        parts = draw.split(3)
        assert len(parts) == 3
        assert sum(p.num_triangles for p in parts) == 10
        stitched = np.concatenate([p.positions for p in parts])
        assert np.array_equal(stitched, draw.positions)

    def test_split_more_parts_than_triangles(self):
        positions, colors = soup(2)
        draw = DrawCommand(draw_id=3, positions=positions, colors=colors)
        parts = draw.split(5)
        assert len(parts) == 5
        assert sum(p.num_triangles for p in parts) == 2

    def test_split_rejects_zero_parts(self):
        positions, colors = soup(2)
        draw = DrawCommand(draw_id=3, positions=positions, colors=colors)
        with pytest.raises(PipelineError):
            draw.split(0)

    def test_split_keeps_state_and_costs(self):
        positions, colors = soup(4)
        state = RenderState(blend_op=BlendOp.OVER, depth_write=False)
        draw = DrawCommand(draw_id=3, positions=positions, colors=colors,
                           state=state, vertex_cost=99.0, pixel_cost=7.0)
        part = draw.split(2)[0]
        assert part.state is state
        assert part.vertex_cost == 99.0
        assert part.pixel_cost == 7.0


class TestHelpers:
    def test_make_triangle(self):
        draw = make_triangle((0, 0, 0), (1, 0, 0), (0, 1, 0),
                             color=(1, 0, 0, 1))
        assert draw.num_triangles == 1
        assert np.allclose(draw.colors[0, 0], [1, 0, 0, 1])

    def test_fullscreen_quad_covers_ndc(self):
        quad = fullscreen_quad()
        assert quad.num_triangles == 2
        xy = quad.positions[..., :2]
        assert xy.min() == -1.0 and xy.max() == 1.0
