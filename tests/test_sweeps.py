"""The generic parameter-sweep utility."""

import pytest

from repro.errors import ConfigError
from repro.harness import experiments as E
from repro.harness.sweeps import crossover, sweep

BENCH = ("wolf",)


class TestSweep:
    def test_matches_dedicated_driver(self):
        """A gpu-count sweep via the generic utility equals Fig 19's."""
        generic = sweep("num_gpus", [2, 8], schemes=("chopin+sched",),
                        benchmarks=BENCH)
        dedicated = E.fig19_gpu_scaling(benchmarks=BENCH,
                                        gpu_counts=(2, 8),
                                        schemes=("chopin+sched",))
        for n in (2, 8):
            assert generic[n]["chopin+sched"] == pytest.approx(
                dedicated[n]["chopin+sched"], rel=1e-9)

    def test_pinned_baseline_mode(self):
        pinned = sweep("latency_cycles", [200, 400],
                       schemes=("chopin+sched",), benchmarks=BENCH,
                       baseline_follows_sweep=False)
        # at the default value both modes agree
        following = sweep("latency_cycles", [200],
                          schemes=("chopin+sched",), benchmarks=BENCH)
        assert pinned[200]["chopin+sched"] == pytest.approx(
            following[200]["chopin+sched"], rel=1e-9)
        # at 400 cycles the pinned-baseline speedup is lower (frame slower,
        # baseline unchanged)
        assert pinned[400]["chopin+sched"] < pinned[200]["chopin+sched"]

    def test_fixed_parameters_forwarded(self):
        table = sweep("msaa_samples", [1, 4], schemes=("chopin+sched",),
                      benchmarks=BENCH, num_gpus=4)
        assert set(table) == {1, 4}

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigError):
            sweep("warp_size", [32])

    def test_swept_and_fixed_conflict(self):
        with pytest.raises(ConfigError):
            sweep("num_gpus", [2, 4], num_gpus=8)


class TestCrossover:
    def test_chopin_overtakes_duplication_with_gpus(self):
        """CHOPIN's win appears somewhere between 2 and 16 GPUs (Fig 19)."""
        result = crossover("num_gpus", [2, 4, 8, 16],
                           scheme_a="chopin+sched", scheme_b="duplication",
                           benchmarks=BENCH)
        assert result is not None
        value, margin = result
        assert value in (2, 4, 8, 16)
        assert margin > 0

    def test_none_when_never_crossing(self):
        # chopin-rr never overtakes the composition-scheduled variant here
        result = crossover("num_gpus", [8],
                           scheme_a="chopin-rr", scheme_b="chopin+sched",
                           benchmarks=BENCH)
        assert result is None
