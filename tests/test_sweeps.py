"""The generic parameter-sweep utility."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.harness import experiments as E
from repro.harness import runner
from repro.harness.engine import Engine
from repro.harness.sweeps import FAILED, crossover, expand_sweep, sweep

BENCH = ("wolf",)


class TestSweep:
    def test_matches_dedicated_driver(self):
        """A gpu-count sweep via the generic utility equals Fig 19's."""
        generic = sweep("num_gpus", [2, 8], schemes=("chopin+sched",),
                        benchmarks=BENCH)
        dedicated = E.fig19_gpu_scaling(benchmarks=BENCH,
                                        gpu_counts=(2, 8),
                                        schemes=("chopin+sched",))
        for n in (2, 8):
            assert generic[n]["chopin+sched"] == pytest.approx(
                dedicated[n]["chopin+sched"], rel=1e-9)

    def test_pinned_baseline_mode(self):
        pinned = sweep("latency_cycles", [200, 400],
                       schemes=("chopin+sched",), benchmarks=BENCH,
                       baseline_follows_sweep=False)
        # at the default value both modes agree
        following = sweep("latency_cycles", [200],
                          schemes=("chopin+sched",), benchmarks=BENCH)
        assert pinned[200]["chopin+sched"] == pytest.approx(
            following[200]["chopin+sched"], rel=1e-9)
        # at 400 cycles the pinned-baseline speedup is lower (frame slower,
        # baseline unchanged)
        assert pinned[400]["chopin+sched"] < pinned[200]["chopin+sched"]

    def test_fixed_parameters_forwarded(self):
        table = sweep("msaa_samples", [1, 4], schemes=("chopin+sched",),
                      benchmarks=BENCH, num_gpus=4)
        assert set(table) == {1, 4}

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigError):
            sweep("warp_size", [32])

    def test_swept_and_fixed_conflict(self):
        with pytest.raises(ConfigError):
            sweep("num_gpus", [2, 4], num_gpus=8)


class TestCrossover:
    def test_chopin_overtakes_duplication_with_gpus(self):
        """CHOPIN trails at 2 GPUs and overtakes later (Fig 19): a real
        sign change, with the margins on both sides of the flip."""
        result = crossover("num_gpus", [2, 4, 8, 16],
                           scheme_a="chopin+sched", scheme_b="duplication",
                           benchmarks=BENCH)
        assert result is not None
        value, margin_before, margin_after = result
        assert value in (4, 8, 16)  # never values[0]: that can't be a flip
        assert margin_before <= 0
        assert margin_after > 0

    def test_none_when_never_crossing(self):
        # chopin-rr never overtakes the composition-scheduled variant here
        result = crossover("num_gpus", [8],
                           scheme_a="chopin-rr", scheme_b="chopin+sched",
                           benchmarks=BENCH)
        assert result is None

    def test_leading_everywhere_is_not_a_crossover(self, monkeypatch):
        """scheme_a ahead at values[0] and ever after: dominance, None."""
        fake = {v: {"a": 2.0, "b": 1.0} for v in (2, 4, 8)}
        monkeypatch.setattr("repro.harness.sweeps.sweep",
                            lambda *args, **kwargs: fake)
        assert crossover("num_gpus", [2, 4, 8],
                         scheme_a="a", scheme_b="b") is None

    def test_failed_cells_skipped_not_invented(self, monkeypatch):
        """A FAILED value is skipped; the flip is detected across it."""
        fake = {2: {"a": 0.5, "b": 1.0},
                4: {"a": FAILED, "b": FAILED},
                8: {"a": 2.0, "b": 1.0}}
        monkeypatch.setattr("repro.harness.sweeps.sweep",
                            lambda *args, **kwargs: fake)
        value, before, after = crossover("num_gpus", [2, 4, 8],
                                         scheme_a="a", scheme_b="b")
        assert value == 8
        assert before == pytest.approx(-0.5)
        assert after == pytest.approx(1.0)


class TestEngineBackedSweep:
    def test_pinned_baseline_simulates_once(self):
        """Satellite fix: the pinned baseline is one job per benchmark,
        not one per (value, scheme)."""
        eng = Engine()
        sweep("latency_cycles", [200, 400],
              schemes=("chopin+sched", "chopin"), benchmarks=BENCH,
              baseline_follows_sweep=False, engine=eng)
        # 2 values x 2 schemes + 1 deduplicated baseline = 5 unique jobs
        assert eng.counters.jobs == 5

    def test_expand_dedup_is_engine_level(self):
        values, specs = expand_sweep("latency_cycles", [200, 400],
                                     schemes=("chopin+sched",),
                                     benchmarks=BENCH,
                                     baseline_follows_sweep=False)
        # the pinned baseline appears once per value in the expansion...
        fingerprints = [s.fingerprint for s in specs]
        assert len(fingerprints) == 4
        # ...but collapses to one unique fingerprint
        assert len(set(fingerprints)) == 3

    def test_failed_job_degrades_to_failed_cell(self, monkeypatch):
        direct = runner.run_benchmark_direct

        def failing(scheme, bench, setup):
            if scheme == "gpupd":
                raise SimulationError("injected permanent failure")
            return direct(scheme, bench, setup)

        monkeypatch.setattr(runner, "run_benchmark_direct", failing)
        eng = Engine(retries=1, backoff=0.0)
        table = sweep("num_gpus", [2, 4],
                      schemes=("chopin+sched", "gpupd"), benchmarks=BENCH,
                      engine=eng)
        for value in (2, 4):
            assert table[value]["gpupd"] == FAILED
            assert isinstance(table[value]["chopin+sched"], float)
        # deterministic errors fail fast: one attempt each, no retries
        assert eng.counters.failed == 2
        assert eng.counters.retries == 0

    def test_failed_baseline_fails_the_whole_column(self, monkeypatch):
        direct = runner.run_benchmark_direct

        def failing(scheme, bench, setup):
            if scheme == "duplication":
                raise SimulationError("baseline down")
            return direct(scheme, bench, setup)

        monkeypatch.setattr(runner, "run_benchmark_direct", failing)
        table = sweep("num_gpus", [2], schemes=("chopin+sched",),
                      benchmarks=BENCH, engine=Engine(retries=0))
        assert table[2]["chopin+sched"] == FAILED
