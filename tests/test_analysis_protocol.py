"""Resource-protocol pass tests: fixtures per rule + seeded mutations.

The fixture tests pin down the abstract-execution model (hold states,
finally protection, interprocedural release, order edges); the meta-tests
at the bottom copy ``src/repro`` and seed it with exactly the bug classes
the pass exists to catch — a dropped port release in the interconnect and
a transfer taking the ports in the reversed order — and require the deep
lint to find them (the unmutated tree stays clean, see test_flow.py).
"""

import pathlib
import shutil
import textwrap

from repro.analysis import lint_paths
from repro.analysis.flow import Project
from repro.analysis.protocol import (RULE_CYCLE, RULE_DOUBLE, RULE_LEAK,
                                     RULE_YIELD, ProtocolChecker)
from repro.analysis.simlint import LintModule

REPO_SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def project_of(*named_sources):
    return Project.from_modules(
        (name, False, LintModule(f"{name}.py", textwrap.dedent(src)))
        for name, src in named_sources)


def protocol_findings(source, allowed_holds=()):
    checker = ProtocolChecker(project_of(("fixture", source)),
                              allowed_holds=frozenset(allowed_holds))
    return checker.run()


def rules_of(findings):
    return {finding.rule for finding in findings}


# ------------------------------------------------------------ leaked-hold


class TestLeakedHold:
    def test_hold_never_released_leaks(self):
        findings = protocol_findings("""
            def worker(self):
                req = yield self.port.request()
                self.count += 1
        """)
        assert rules_of(findings) == {RULE_LEAK}
        assert "never released" in findings[0].message

    def test_release_on_every_path_is_clean(self):
        findings = protocol_findings("""
            def worker(self):
                req = yield self.port.request()
                self.port.release(req)
        """)
        assert findings == []

    def test_discarded_request_leaks(self):
        findings = protocol_findings("""
            def worker(self):
                self.port.request()
        """)
        assert rules_of(findings) == {RULE_LEAK}
        assert "discarded" in findings[0].message

    def test_unbound_granted_request_leaks(self):
        findings = protocol_findings("""
            def worker(self):
                yield self.port.request()
        """)
        assert rules_of(findings) == {RULE_LEAK}
        assert "never bound" in findings[0].message

    def test_rebinding_last_reference_leaks(self):
        findings = protocol_findings("""
            def worker(self):
                req = yield self.port.request()
                req = None
        """)
        assert rules_of(findings) == {RULE_LEAK}
        assert "rebinding" in findings[0].message

    def test_yield_inside_try_without_finally_release_leaks(self):
        findings = protocol_findings("""
            def worker(self):
                req = yield self.port.request()
                try:
                    yield self.sim.timeout(3)
                except ValueError:
                    self.log("interrupted")
                self.port.release(req)
        """)
        assert rules_of(findings) == {RULE_LEAK}
        assert "without a finally release" in findings[0].message

    def test_release_via_callee_is_clean(self):
        findings = protocol_findings("""
            class Link:
                def _done(self, req):
                    self.port.release(req)

                def worker(self):
                    req = yield self.port.request()
                    self._done(req)
        """)
        assert findings == []


# ---------------------------------------------------- yield-while-holding


class TestYieldWhileHolding:
    def test_unprotected_yield_flags(self):
        findings = protocol_findings("""
            def worker(self):
                req = yield self.port.request()
                yield self.sim.timeout(3)
                self.port.release(req)
        """)
        assert rules_of(findings) == {RULE_YIELD}
        assert "holding 'port'" in findings[0].message

    def test_finally_release_protects_the_hold(self):
        findings = protocol_findings("""
            def worker(self):
                req = yield self.port.request()
                try:
                    yield self.sim.timeout(3)
                finally:
                    self.port.withdraw(req)
        """)
        assert findings == []

    def test_finally_release_through_callee_protects(self):
        findings = protocol_findings("""
            class Link:
                def _cleanup(self, req):
                    self.port.withdraw(req)

                def worker(self):
                    req = yield self.port.request()
                    try:
                        yield self.sim.timeout(3)
                    finally:
                        self._cleanup(req)
        """)
        assert findings == []

    def test_allowlisted_resource_may_span_yields(self):
        source = """
            def worker(self):
                req = yield self.port.request()
                yield self.sim.timeout(3)
                self.port.release(req)
        """
        assert protocol_findings(source, allowed_holds={"port"}) == []

    def test_guarded_finally_release_protects(self):
        # the interconnect idiom: the request variable may still be None
        findings = protocol_findings("""
            def worker(self):
                req = yield self.port.request()
                try:
                    yield self.sim.timeout(3)
                finally:
                    if req is not None:
                        self.port.withdraw(req)
        """)
        assert findings == []


# ----------------------------------------------------------- double-release


class TestDoubleRelease:
    def test_strict_release_twice_flags(self):
        findings = protocol_findings("""
            def worker(self):
                req = yield self.port.request()
                self.port.release(req)
                self.port.release(req)
        """)
        assert rules_of(findings) == {RULE_DOUBLE}
        assert "already released" in findings[0].message

    def test_withdraw_is_idempotent_safe(self):
        findings = protocol_findings("""
            def worker(self):
                req = yield self.port.request()
                self.port.withdraw(req)
                self.port.withdraw(req)
        """)
        assert findings == []

    def test_release_in_branch_then_handler_is_not_double(self):
        # the handler observes a partially executed body: releasing there
        # is cleanup, not a second release
        findings = protocol_findings("""
            def worker(self):
                req = yield self.port.request()
                try:
                    self.port.release(req)
                except ValueError:
                    self.port.release(req)
        """)
        assert findings == []


# --------------------------------------------------------- lock-order-cycle


class TestLockOrderCycle:
    CONFLICTING = """
        def forward(p, q):
            a = yield p.request()
            try:
                b = yield q.request()
                q.release(b)
            finally:
                p.withdraw(a)

        def backward(p, q):
            b = yield q.request()
            try:
                a = yield p.request()
                p.release(a)
            finally:
                q.withdraw(b)
    """

    def test_conflicting_orders_cycle(self):
        findings = protocol_findings(self.CONFLICTING)
        assert rules_of(findings) == {RULE_CYCLE}
        assert "{p, q}" in findings[0].message

    def test_consistent_order_is_clean(self):
        findings = protocol_findings("""
            def forward(p, q):
                a = yield p.request()
                try:
                    b = yield q.request()
                    q.release(b)
                finally:
                    p.withdraw(a)

            def also_forward(p, q):
                a = yield p.request()
                try:
                    b = yield q.request()
                    q.release(b)
                finally:
                    p.withdraw(a)
        """)
        assert findings == []

    def test_same_resource_reentry_is_not_a_cycle(self):
        # capacity > 1 makes nested holds of one resource legitimate
        findings = protocol_findings("""
            def worker(self):
                first = yield self.port.request()
                try:
                    second = yield self.port.request()
                    self.port.release(second)
                finally:
                    self.port.withdraw(first)
        """)
        assert findings == []

    def test_edges_follow_calls(self):
        # order edges cross call boundaries: caller holds `outer`, callee
        # acquires its own port
        findings = protocol_findings("""
            class Hub:
                def inner_hop(self):
                    req = yield self.inner.request()
                    self.inner.release(req)

                def forward(self):
                    req = yield self.outer.request()
                    try:
                        yield from self.inner_hop()
                    finally:
                        self.outer.withdraw(req)

                def backward(self):
                    req = yield self.inner.request()
                    try:
                        other = yield self.outer.request()
                        self.outer.release(other)
                    finally:
                        self.inner.withdraw(req)
        """)
        assert rules_of(findings) == {RULE_CYCLE}
        assert "{inner, outer}" in findings[0].message

    def test_subscripts_share_resource_identity(self):
        # self.egress[src] and self.egress[dst] are the same order class
        findings = protocol_findings("""
            def worker(self, src, dst):
                a = yield self.egress[src].request()
                try:
                    b = yield self.egress[dst].request()
                    self.egress[dst].release(b)
                finally:
                    self.egress[src].withdraw(a)
        """)
        assert findings == []


# -------------------------------------------------------------- suppression


class TestSuppression:
    def test_marker_on_acquire_line_suppresses_leak(self, tmp_path):
        module = tmp_path / "leaky.py"
        module.write_text(textwrap.dedent("""
            def worker(self):
                req = yield self.port.request()  # simlint: disable=leaked-hold
                self.count += 1
        """))
        findings = [f for f in lint_paths([tmp_path], deep=True)
                    if f.rule == RULE_LEAK]
        assert findings == []


# ------------------------------------------------------- seeded mutations


def _copy_src_repro(tmp_path):
    tree = tmp_path / "repro"
    shutil.copytree(REPO_SRC, tree)
    return tree


class TestProtocolMeta:
    def test_catches_seeded_release_drop(self, tmp_path):
        tree = _copy_src_repro(tmp_path)
        interconnect = tree / "timing" / "interconnect.py"
        source = interconnect.read_text()
        mutated = source.replace(
            "self.egress[src].withdraw(egress_req)",
            "pass  # dropped the egress release")
        assert mutated != source
        interconnect.write_text(mutated)
        findings = [f for f in lint_paths([tree], deep=True)
                    if f.rule == RULE_LEAK]
        assert any("interconnect.py" in f.path
                   and "egress" in f.message for f in findings)

    def test_catches_seeded_order_reversal(self, tmp_path):
        tree = _copy_src_repro(tmp_path)
        interconnect = tree / "timing" / "interconnect.py"
        source = interconnect.read_text()
        reversed_transfer = textwrap.dedent("""
            def reversed_transfer(self, src, dst):
                ingress_req = self.ingress[dst].request()
                try:
                    yield ingress_req
                    egress_req = self.egress[src].request()
                    try:
                        yield egress_req
                    finally:
                        self.egress[src].withdraw(egress_req)
                finally:
                    self.ingress[dst].withdraw(ingress_req)
        """)
        mutated = source.replace(
            "\n    def _stream_once",
            "\n" + textwrap.indent(reversed_transfer, "    ")
            + "\n    def _stream_once", 1)
        assert mutated != source
        interconnect.write_text(mutated)
        findings = [f for f in lint_paths([tree], deep=True)
                    if f.rule == RULE_CYCLE]
        assert any("egress" in f.message and "ingress" in f.message
                   for f in findings)
