"""Trace containers, the synthetic generator, and the benchmark suite."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.geometry import BlendOp, DrawCommand, RenderState
from repro.traces import (BENCHMARK_NAMES, SCALES, TABLE3, Trace, TraceSpec,
                          load_benchmark, load_suite, scale_for, synthesize,
                          transparent_runs, triangle_histogram)
from repro.traces.trace import Frame


def small_spec(**overrides):
    base = dict(name="t", width=64, height=64, num_draws=30,
                num_triangles=900, seed=11)
    base.update(overrides)
    return TraceSpec(**base)


class TestTraceContainer:
    def test_counts(self, micro_trace):
        assert micro_trace.num_draws == 24
        assert micro_trace.num_triangles == 600

    def test_single_frame_property(self, micro_trace):
        assert micro_trace.frame is micro_trace.frames[0]

    def test_multi_frame_frame_property_raises(self, micro_trace):
        multi = Trace(name="m", width=8, height=8,
                      frames=[Frame(), Frame()])
        with pytest.raises(TraceError):
            _ = multi.frame

    def test_validate_rejects_duplicate_ids(self):
        positions = np.zeros((1, 3, 3), np.float32)
        colors = np.zeros((1, 3, 4), np.float32)
        draws = [DrawCommand(draw_id=1, positions=positions, colors=colors)
                 for _ in range(2)]
        trace = Trace(name="bad", width=8, height=8,
                      frames=[Frame(draws=draws)])
        with pytest.raises(TraceError):
            trace.validate()

    def test_validate_rejects_transparent_depth_write(self):
        positions = np.zeros((1, 3, 3), np.float32)
        colors = np.zeros((1, 3, 4), np.float32)
        bad = DrawCommand(draw_id=1, positions=positions, colors=colors,
                          state=RenderState(blend_op=BlendOp.OVER,
                                            depth_write=True))
        trace = Trace(name="bad", width=8, height=8,
                      frames=[Frame(draws=[bad])])
        with pytest.raises(TraceError):
            trace.validate()

    def test_histogram_buckets_cover_all_draws(self, micro_trace):
        hist = triangle_histogram(micro_trace, [4, 16, 64])
        assert sum(hist.values()) == micro_trace.num_draws

    def test_transparent_runs_grouped_by_operator(self, micro_trace):
        runs = transparent_runs(micro_trace.frame)
        for run in runs:
            ops = {d.state.blend_op for d in run}
            assert len(ops) == 1


class TestSyntheticGenerator:
    def test_deterministic_in_seed(self):
        a, b = synthesize(small_spec()), synthesize(small_spec())
        assert a.frame.draws[5].positions.tolist() == \
            b.frame.draws[5].positions.tolist()

    def test_different_seeds_differ(self):
        a = synthesize(small_spec())
        b = synthesize(small_spec(seed=12))
        assert not np.array_equal(a.frame.draws[5].positions,
                                  b.frame.draws[5].positions)

    def test_exact_draw_and_triangle_counts(self):
        trace = synthesize(small_spec(num_draws=40, num_triangles=1500))
        assert trace.num_draws == 40
        assert trace.num_triangles == 1500

    def test_transparent_draws_at_end(self):
        trace = synthesize(small_spec())
        draws = trace.frame.draws
        flags = [d.transparent for d in draws]
        first_transparent = flags.index(True)
        assert all(flags[first_transparent:])

    def test_transparent_back_to_front(self):
        trace = synthesize(small_spec(num_draws=60, num_triangles=3000,
                                      transparent_fraction=0.15,
                                      additive_fraction=0.0))
        transparent = [d for d in trace.frame.draws if d.transparent]
        depths = [float(d.positions[..., 2].mean()) for d in transparent]
        assert depths == sorted(depths, reverse=True)

    def test_opaque_objects_roughly_front_to_back(self):
        trace = synthesize(small_spec(num_draws=80, num_triangles=4000,
                                      tiny_draw_fraction=0.05,
                                      big_triangle_fraction=0.0))
        object_draws = [d for d in trace.frame.draws[1:]
                        if not d.transparent and d.num_triangles > 8]
        depths = np.array([float(d.positions[..., 2].mean())
                           for d in object_draws])
        # strongly increasing on average (front-to-back submission)
        assert np.corrcoef(np.arange(len(depths)), depths)[0, 1] > 0.8

    def test_geometry_stays_in_ndc(self):
        trace = synthesize(small_spec())
        for draw in trace.frame.draws:
            assert (draw.positions[..., 2] >= 0).all()
            assert (draw.positions[..., 2] <= 1).all()

    def test_state_events_present(self):
        trace = synthesize(small_spec(num_draws=60, num_triangles=3000))
        draws = trace.frame.draws
        assert any(d.state.render_target != 0 for d in draws)
        assert any(not d.state.depth_write and not d.transparent
                   for d in draws)

    def test_additive_run_exists(self):
        trace = synthesize(small_spec(num_draws=80, num_triangles=4000,
                                      transparent_fraction=0.2,
                                      additive_fraction=0.5))
        ops = [d.state.blend_op for d in trace.frame.draws if d.transparent]
        assert BlendOp.ADDITIVE in ops and BlendOp.OVER in ops

    def test_rejects_too_few_draws(self):
        with pytest.raises(TraceError):
            synthesize(small_spec(num_draws=4))

    def test_rejects_too_few_triangles(self):
        with pytest.raises(TraceError):
            synthesize(small_spec(num_triangles=30))

    def test_big_triangles_are_early_and_far(self):
        trace = synthesize(small_spec(num_draws=60, num_triangles=6000,
                                      big_triangle_fraction=0.2,
                                      tiny_draw_fraction=0.05))
        object_draws = [d for d in trace.frame.draws[1:]
                        if not d.transparent and d.num_triangles > 8]
        # earliest object draws should sit at far depth (sky/road geometry)
        early_depth = float(object_draws[0].positions[..., 2].mean())
        assert early_depth > 0.8


class TestScales:
    def test_paper_scale_is_identity(self):
        scale = SCALES["paper"]
        assert scale.cost_multiplier == 1.0
        assert scale.tile_size() == 64
        assert scale.composition_threshold() == 4096

    def test_tiny_scale_ratios(self):
        scale = SCALES["tiny"]
        assert scale.cost_multiplier == 4.0
        assert scale.tile_size() == 16
        assert scale.composition_threshold() == 64
        assert scale.primitive_id_bytes() == 16

    def test_apply_shrinks_spec(self):
        spec = SCALES["tiny"].apply(TABLE3["cod2"])
        assert spec.width == 160 and spec.height == 120
        assert spec.num_triangles == TABLE3["cod2"].num_triangles // 64


class TestBenchmarks:
    def test_all_eight_present(self):
        assert len(BENCHMARK_NAMES) == 8
        assert set(BENCHMARK_NAMES) == {
            "cod2", "cry", "grid", "mirror", "nfs", "stal", "ut3", "wolf"}

    def test_table3_paper_numbers(self):
        assert TABLE3["cry"].num_triangles == 800_948
        assert TABLE3["grid"].num_draws == 2623
        assert TABLE3["wolf"].width == 640

    def test_load_caches(self):
        assert load_benchmark("cod2", "tiny") is load_benchmark(
            "cod2", "tiny")

    def test_unknown_name_rejected(self):
        with pytest.raises(TraceError):
            load_benchmark("doom")
        with pytest.raises(TraceError):
            load_benchmark("cod2", scale="huge")
        with pytest.raises(TraceError):
            scale_for("huge")

    def test_load_suite_subset(self):
        suite = load_suite("tiny", names=("cod2", "wolf"))
        assert [t.name for t in suite] == ["cod2", "wolf"]


class TestPartitionProperties:
    """Property tests on the generator's triangle partitioning."""

    def test_partition_exact_and_positive(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st
        import numpy as np
        from repro.traces.synthetic import TraceSpec, _FrameBuilder

        @given(total=st.integers(50, 5000), parts=st.integers(1, 40),
               seed=st.integers(0, 999))
        @settings(max_examples=80, deadline=None)
        def check(total, parts, seed):
            if total < parts:
                return
            spec = TraceSpec(name="p", width=64, height=64, num_draws=20,
                             num_triangles=1000, seed=seed)
            builder = _FrameBuilder(spec, np.random.default_rng(seed))
            counts = builder._partition_triangles(total, parts)
            assert int(counts.sum()) == total
            assert counts.min() >= 1
            assert len(counts) == parts

        check()

    def test_partition_is_skewed(self):
        """The lognormal weights must produce heavy-tailed draw sizes (the
        bimodality that makes the composition threshold work)."""
        import numpy as np
        from repro.traces.synthetic import TraceSpec, _FrameBuilder
        spec = TraceSpec(name="p", width=64, height=64, num_draws=20,
                         num_triangles=1000, seed=3)
        builder = _FrameBuilder(spec, np.random.default_rng(3))
        counts = builder._partition_triangles(10_000, 100)
        assert counts.max() > 5 * np.median(counts)
