"""simlint rules, suppressions, reporters, CLI, and the race sanitizer.

Structure mirrors the package: one fixture snippet per lint rule (a
positive case the rule must flag and a suppressed/idiomatic case it must
not), then crafted sim processes whose same-cycle accesses the sanitizer
must flag — and a clean production run it must not.

The meta-test at the bottom is the repo's own gate: ``src/repro`` stays
lint-clean forever, or this suite fails.
"""

import json
import pathlib
import textwrap

import pytest

import repro
from repro.analysis import (ACCESS_ARBITRATED, ACCESS_READ, ACCESS_WRITE,
                            CONFLICT_RW, CONFLICT_WW, RULES, RaceSanitizer,
                            default_rules, lint_paths, lint_source,
                            render_json, render_text)
from repro.analysis.simlint import SYNTAX_RULE, suppressed_rules
from repro.cli import main
from repro.errors import RaceConditionError, ReproError, SimulationError
from repro.harness import make_setup, run
from repro.sim import Simulator
from repro.traces import load_benchmark


def lint(snippet):
    return lint_source(textwrap.dedent(snippet))


def rules_hit(snippet):
    return {f.rule for f in lint(snippet)}


# ---------------------------------------------------------------- lint rules


class TestUnseededRNG:
    def test_flags_global_random(self):
        findings = lint("""\
            import random
            x = random.random()
        """)
        assert [f.rule for f in findings] == ["unseeded-rng"]
        assert findings[0].line == 2

    def test_flags_aliased_numpy_global(self):
        assert rules_hit("""\
            import numpy as np
            np.random.shuffle([1, 2])
        """) == {"unseeded-rng"}

    def test_flags_from_import(self):
        assert rules_hit("""\
            from random import randint
            roll = randint(1, 6)
        """) == {"unseeded-rng"}

    def test_allows_seeded_instances(self):
        assert rules_hit("""\
            import random
            import numpy as np
            rng = random.Random(7)
            gen = np.random.default_rng(7)
            x = rng.random() + gen.random()
        """) == set()

    def test_unrelated_module_not_flagged(self):
        # a local object that happens to be called `random` is not the
        # stdlib module
        assert rules_hit("""\
            random = make_generator()
            x = random.random()
        """) == set()


class TestWallClock:
    def test_flags_time_time(self):
        assert rules_hit("""\
            import time
            t = time.time()
        """) == {"wall-clock"}

    def test_flags_datetime_now(self):
        assert rules_hit("""\
            import datetime
            stamp = datetime.datetime.now()
        """) == {"wall-clock"}
        assert rules_hit("""\
            from datetime import datetime
            stamp = datetime.now()
        """) == {"wall-clock"}

    def test_allows_monotonic_and_sim_now(self):
        assert rules_hit("""\
            import time
            start = time.monotonic()
            elapsed = time.perf_counter() - start
            cycle = sim.now
        """) == set()


class TestUnorderedIter:
    def test_flags_for_over_set_literal(self):
        assert rules_hit("""\
            for gpu in {3, 1, 2}:
                schedule(gpu)
        """) == {"unordered-iter"}

    def test_flags_list_of_set_call(self):
        assert rules_hit("""\
            order = list(set(pending))
        """) == {"unordered-iter"}

    def test_flags_comprehension_over_set_union(self):
        assert rules_hit("""\
            sends = [g for g in ready | waiting_set()]
        """) == set()  # neither side provably a set
        assert rules_hit("""\
            sends = [g for g in set(ready) | waiting]
        """) == {"unordered-iter"}

    def test_sorted_is_the_fix(self):
        assert rules_hit("""\
            for gpu in sorted({3, 1, 2}):
                schedule(gpu)
        """) == set()

    def test_flags_set_comprehension_into_key_fields(self):
        # hashing unordered fields would scramble store addresses
        assert rules_hit("""\
            fields = list({d.draw_id for d in draws})
        """) == {"unordered-iter"}
        assert rules_hit("""\
            fields = sorted({d.draw_id for d in draws})
        """) == set()

    def test_list_followed_by_sort_is_the_other_fix(self):
        # materialize-then-sort establishes an order before anyone iterates
        assert rules_hit("""\
            items = list(set(pending))
            items.sort()
        """) == set()
        assert rules_hit("""\
            def drain(pending, extra):
                order = list(set(pending) | extra)
                order.sort(key=str)
                return order
        """) == set()

    def test_sort_in_another_scope_does_not_exempt(self):
        # the .sort() must happen in the same scope as the list(...) call
        assert rules_hit("""\
            def build(pending):
                return list(set(pending))

            def elsewhere(items):
                items.sort()
        """) == {"unordered-iter"}

    def test_plain_list_of_set_still_flags(self):
        assert rules_hit("""\
            items = list(set(pending))
            use(items)
        """) == {"unordered-iter"}


class TestMutableDefault:
    def test_flags_list_and_dict_defaults(self):
        assert rules_hit("""\
            def enqueue(job, queue=[]):
                queue.append(job)
        """) == {"mutable-default"}
        assert rules_hit("""\
            def tally(counts=dict(), *, seen=set()):
                pass
        """) == {"mutable-default"}

    def test_allows_none_default(self):
        assert rules_hit("""\
            def enqueue(job, queue=None):
                queue = queue if queue is not None else []
        """) == set()


class TestYieldNonEvent:
    def test_flags_literal_yield_in_sim_process(self):
        findings = lint("""\
            def transfer(sim):
                yield sim.timeout(10)
                yield 10
        """)
        assert [f.rule for f in findings] == ["yield-non-event"]
        assert findings[0].line == 3

    def test_flags_bare_yield(self):
        assert rules_hit("""\
            def worker(self):
                yield self.sim.timeout(1)
                yield
        """) == {"yield-non-event"}

    def test_plain_generators_exempt(self):
        # no sim interaction: an ordinary data generator may yield anything
        assert rules_hit("""\
            def numbers():
                yield 1
                yield 2
        """) == set()

    def test_event_yields_clean(self):
        assert rules_hit("""\
            def transfer(sim, port):
                req = port.request()
                yield req
                yield sim.timeout(5)
                yield sim.all_of([req])
        """) == set()


class TestBroadExcept:
    def test_flags_bare_except(self):
        assert rules_hit("""\
            try:
                step()
            except:
                pass
        """) == {"broad-except"}

    def test_flags_base_exception_without_reraise(self):
        assert rules_hit("""\
            try:
                step()
            except BaseException as exc:
                log(exc)
        """) == {"broad-except"}

    def test_reraising_handler_is_clean(self):
        assert rules_hit("""\
            try:
                step()
            except BaseException as exc:
                log(exc)
                raise
        """) == set()

    def test_except_exception_is_fine(self):
        assert rules_hit("""\
            try:
                step()
            except Exception:
                pass
        """) == set()


class TestSuppressions:
    def test_named_suppression(self):
        assert rules_hit("""\
            import random
            x = random.random()  # simlint: disable=unseeded-rng
        """) == set()

    def test_bare_disable_suppresses_everything(self):
        assert rules_hit("""\
            import time
            t = time.time()  # simlint: disable
        """) == set()

    def test_suppressing_the_wrong_rule_keeps_the_finding(self):
        assert rules_hit("""\
            import time
            t = time.time()  # simlint: disable=unseeded-rng
        """) == {"wall-clock"}

    def test_marker_parsing(self):
        assert suppressed_rules("x = 1") is None
        assert suppressed_rules("x  # simlint: disable") == set()
        assert suppressed_rules(
            "x  # simlint: disable=a-rule, other") == {"a-rule", "other"}


class TestDriverAndReporters:
    def test_syntax_error_is_one_finding(self):
        findings = lint_source("def broken(:\n")
        assert [f.rule for f in findings] == [SYNTAX_RULE]

    def test_registry_and_default_rules_agree(self):
        names = [r.name for r in default_rules()]
        assert names == sorted(RULES)
        assert len(names) == len(set(names))

    def test_render_text_mentions_rule_and_location(self):
        findings = lint_source("import time\nt = time.time()\n",
                               path="snippet.py")
        text = render_text(findings)
        assert "snippet.py:2" in text
        assert "wall-clock" in text
        assert render_text([]).startswith("simlint: clean")

    def test_render_json_round_trips(self):
        findings = lint_source("import time\nt = time.time()\n")
        doc = json.loads(render_json(findings))
        assert doc["version"] == 1
        assert doc["count"] == 1
        assert doc["findings"][0]["rule"] == "wall-clock"

    def test_lint_paths_deduplicates(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        findings = lint_paths([bad, tmp_path])
        assert len(findings) == 1


# ------------------------------------------------------------ race sanitizer


def _writer(sim, region, at, kind=ACCESS_WRITE):
    yield sim.timeout(at)
    sim.record_access(region, kind)


class TestRaceSanitizer:
    def test_same_cycle_write_write_names_both_processes(self):
        sim = Simulator(sanitize=True)
        sim.process(_writer(sim, "fb:region0", 5), name="gpu0-compose")
        sim.process(_writer(sim, "fb:region0", 5), name="gpu1-compose")
        sim.run()
        conflicts = sim.sanitizer.conflicts
        assert len(conflicts) == 1
        c = conflicts[0]
        assert c.kind == CONFLICT_WW
        assert c.resource == "fb:region0"
        assert c.cycle == 5
        assert c.processes == ("gpu0-compose", "gpu1-compose")
        report = sim.sanitizer.render_report()
        assert "gpu0-compose" in report and "gpu1-compose" in report
        assert "cycle 5" in report

    def test_read_write_conflict(self):
        sim = Simulator(sanitize=True)
        sim.process(_writer(sim, "fb:r", 3, ACCESS_READ), name="reader")
        sim.process(_writer(sim, "fb:r", 3, ACCESS_WRITE), name="writer")
        sim.run()
        kinds = {c.kind for c in sim.sanitizer.conflicts}
        assert kinds == {CONFLICT_RW}

    def test_different_cycles_do_not_conflict(self):
        sim = Simulator(sanitize=True)
        sim.process(_writer(sim, "fb:r", 5), name="gpu0")
        sim.process(_writer(sim, "fb:r", 6), name="gpu1")
        sim.run()
        assert not sim.sanitizer.has_conflicts
        assert sim.sanitizer.accesses_recorded == 2

    def test_same_process_may_rewrite(self):
        def twice(sim):
            yield sim.timeout(5)
            sim.record_access("fb:r", ACCESS_WRITE)
            sim.record_access("fb:r", ACCESS_WRITE)
        sim = Simulator(sanitize=True)
        sim.process(twice(sim), name="gpu0")
        sim.run()
        assert not sim.sanitizer.has_conflicts

    def test_arbitrated_accesses_exempt(self):
        sim = Simulator(sanitize=True)
        sim.process(_writer(sim, "store:q", 5, ACCESS_ARBITRATED), name="a")
        sim.process(_writer(sim, "store:q", 5, ACCESS_ARBITRATED), name="b")
        sim.run()
        assert not sim.sanitizer.has_conflicts
        assert sim.sanitizer.accesses_recorded == 2

    def test_raise_if_conflicts(self):
        san = RaceSanitizer()
        san.record("fb:r", ACCESS_WRITE, "p0", 1.0)
        san.record("fb:r", ACCESS_WRITE, "p1", 1.0)
        with pytest.raises(RaceConditionError) as err:
            san.raise_if_conflicts()
        assert isinstance(err.value, SimulationError)
        assert "p0" in str(err.value) and "p1" in str(err.value)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            RaceSanitizer().record("r", "scribble", "p", 0.0)

    def test_off_by_default(self):
        sim = Simulator()
        assert sim.sanitizer is None
        sim.record_access("fb:r")  # no-op, must not blow up

    def test_main_attribution_outside_processes(self):
        sim = Simulator(sanitize=True)
        sim.record_access("fb:r", ACCESS_WRITE)
        sim.record_access("fb:r", ACCESS_WRITE)
        assert not sim.sanitizer.has_conflicts  # both attributed to <main>


class TestSanitizedRuns:
    def test_smoke_run_is_clean_and_timing_identical(self):
        trace = load_benchmark("cod2", "tiny")
        plain = run("chopin+sched", trace, make_setup("tiny", num_gpus=4))
        sane = run("chopin+sched", trace,
                   make_setup("tiny", num_gpus=4, sanitize=True))
        assert sane.frame_cycles == plain.frame_cycles

    def test_make_setup_threads_the_flag(self):
        setup = make_setup("tiny", sanitize=True)
        assert setup.config.sanitize is True
        assert ("sanitize", True) in setup.origin
        assert make_setup("tiny").config.sanitize is False

    def test_resource_traffic_recorded_under_sanitizer(self):
        trace = load_benchmark("cod2", "tiny")
        setup = make_setup("tiny", num_gpus=2, sanitize=True)
        from repro.harness import build_scheme
        scheme = build_scheme("chopin+sched", setup)
        sim = scheme._make_sim()
        assert sim.sanitizer is not None
        result = scheme.run(trace)
        assert result.frame_cycles > 0


class TestSanitizerCoverage:
    """``RunStats.sanitizer_accesses`` records how much the sanitizer saw."""

    def test_sanitized_run_records_accesses(self):
        trace = load_benchmark("cod2", "tiny")
        sane = run("chopin+sched", trace,
                   make_setup("tiny", num_gpus=4, sanitize=True))
        plain = run("chopin+sched", trace, make_setup("tiny", num_gpus=4))
        assert sane.stats.sanitizer_accesses > 0
        assert plain.stats.sanitizer_accesses == 0

    def test_roundtrips_through_journal_snapshot(self):
        from repro.stats import RunStats
        stats = RunStats(num_gpus=2, frame_cycles=10.0)
        stats.sanitizer_accesses = 123
        restored = RunStats.from_dict(stats.to_dict())
        assert restored.sanitizer_accesses == 123
        # journals written before the field existed load as zero
        old = stats.to_dict()
        del old["sanitizer_accesses"]
        assert RunStats.from_dict(old).sanitizer_accesses == 0

    def test_exported_in_engine_summary_and_csv(self, tmp_path):
        import csv

        from repro.harness.export import (ENGINE_COLUMNS, result_row,
                                          write_csv)
        from repro.harness.runner import run_benchmark
        assert "sanitizer_accesses" in ENGINE_COLUMNS
        setup = make_setup("tiny", num_gpus=2, sanitize=True)
        result = run_benchmark("chopin", "cod2", setup)
        row = result_row(result, setup, result.frame_cycles)
        assert row["sanitizer_accesses"] > 0
        out = tmp_path / "rows.csv"
        write_csv([row], out)
        with open(out, newline="") as handle:
            loaded = list(csv.DictReader(handle))
        assert int(loaded[0]["sanitizer_accesses"]) > 0


# ------------------------------------------------------------------- the CLI


class TestLintCLI:
    def test_exit_zero_on_clean_file(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["lint", str(clean)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_nonzero_with_rule_and_location(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "unseeded-rng" in out
        assert f"{bad}:2" in out

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert main(["lint", "--format", "json", str(bad)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] == 1

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in RULES:
            assert name in out

    def test_render_accepts_sanitize_flag(self, capsys):
        assert main(["render", "cod2", "--gpus", "2",
                     "--scheme", "duplication", "--sanitize"]) == 0
        assert "frame time" in capsys.readouterr().out

    def test_nonexistent_path_is_a_config_error(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        assert main(["lint", str(missing)]) == 2
        err = capsys.readouterr().err
        assert "does not exist" in err

    def test_accepts_files_and_directories_mixed(self, tmp_path, capsys):
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "a.py").write_text("import random\nx = random.random()\n")
        lone = tmp_path / "b.py"
        lone.write_text("import time\nt = time.time()\n")
        assert main(["lint", str(sub), str(lone)]) == 1
        out = capsys.readouterr().out
        assert "unseeded-rng" in out and "wall-clock" in out

    def test_default_path_is_the_installed_package(self, capsys):
        # with no paths, lint covers src/repro itself — which must be clean
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_list_rules_includes_deep_rules_and_severity(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in ("unit-mismatch", "unit-return", "unit-arg",
                     "nondet-taint"):
            assert name in out
        assert "[deep/" in out and "[stmt/" in out
        assert "warning" in out and "error" in out

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit):
            main(["lint", "--help"])
        out = capsys.readouterr().out
        assert "exit code" in out.lower()


class TestSeverity:
    def test_statement_rules_are_stamped(self):
        findings = lint_source("def f(x=[]):\n    return x\n")
        assert [f.severity for f in findings] == ["warning"]
        findings = lint_source("import random\nx = random.random()\n")
        assert [f.severity for f in findings] == ["error"]

    def test_text_report_shows_severity_and_tally(self):
        findings = lint_source(
            "import random\n"
            "def f(x=[]):\n"
            "    return random.random()\n")
        text = render_text(findings)
        assert ": warning: mutable-default:" in text
        assert ": error: unseeded-rng:" in text
        assert "(1 error, 1 warning)" in text

    def test_severity_survives_json(self):
        findings = lint_source("def f(x=[]):\n    return x\n")
        doc = json.loads(render_json(findings))
        assert doc["findings"][0]["severity"] == "warning"


# ------------------------------------------- engine exception classification


class TestEngineClassification:
    def test_library_error_is_a_failed_cell(self, monkeypatch):
        from repro.harness import engine as engine_module
        from repro.harness.engine import Engine, JobSpec

        def boom(spec, in_process=True):
            raise SimulationError("deterministic wedge")

        monkeypatch.setattr(engine_module, "execute_spec", boom)
        eng = Engine(jobs=1, retries=0)
        outcome = eng.run_job(JobSpec(kind="ok", params={}))
        assert outcome.status == "failed"
        assert outcome.error == "SimulationError"

    def test_programming_error_propagates(self, monkeypatch):
        from repro.harness import engine as engine_module
        from repro.harness.engine import Engine, JobSpec

        def boom(spec, in_process=True):
            raise ValueError("a bug, not a job property")

        monkeypatch.setattr(engine_module, "execute_spec", boom)
        eng = Engine(jobs=1, retries=0)
        with pytest.raises(ValueError):
            eng.run_job(JobSpec(kind="ok", params={}))

    def test_keyboard_interrupt_propagates(self, monkeypatch):
        from repro.harness import engine as engine_module
        from repro.harness.engine import Engine, JobSpec

        def interrupted(spec, in_process=True):
            raise KeyboardInterrupt

        monkeypatch.setattr(engine_module, "execute_spec", interrupted)
        eng = Engine(jobs=1, retries=0)
        with pytest.raises(KeyboardInterrupt):
            eng.run_job(JobSpec(kind="ok", params={}))


# ------------------------------------------------------------- the meta-test


def test_src_repro_is_lint_clean():
    package_root = pathlib.Path(repro.__file__).parent
    findings = lint_paths([package_root])
    assert findings == [], render_text(findings)


class TestServeWallClock:
    """Inside repro.serve even *monotonic* host-clock reads are banned."""

    @staticmethod
    def serve_rules_hit(snippet, path="src/repro/serve/daemon.py"):
        return {f.rule
                for f in lint_source(textwrap.dedent(snippet), path=path)}

    def test_monotonic_flagged_inside_serve(self):
        assert self.serve_rules_hit("""\
            import time
            start = time.monotonic()
        """) == {"wall-clock"}

    def test_sleep_and_perf_counter_flagged_inside_serve(self):
        assert self.serve_rules_hit("""\
            import time
            time.sleep(0.1)
            t = time.perf_counter()
        """) == {"wall-clock"}

    def test_monotonic_still_allowed_elsewhere(self):
        snippet = """\
            import time
            start = time.monotonic()
        """
        assert self.serve_rules_hit(
            snippet, path="src/repro/harness/engine.py") == set()
        # a module merely named 'server' outside the package is exempt too
        assert self.serve_rules_hit(
            snippet, path="src/observer/daemon.py") == set()

    def test_wall_clock_proper_still_flagged_everywhere(self):
        assert self.serve_rules_hit("""\
            import time
            t = time.time()
        """, path="src/repro/harness/engine.py") == {"wall-clock"}

    def test_sim_now_is_the_blessed_clock(self):
        assert self.serve_rules_hit("""\
            cycle = sim.now
            yield sim.timeout(10.0)
        """) == set()
