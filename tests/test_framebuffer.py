"""Framebuffers, surface pools, depth tests."""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.framebuffer import (DEPTH_CLEAR, Framebuffer, SurfacePool,
                               depth_test, is_order_independent)
from repro.geometry import DepthFunc


class TestDepthTest:
    def test_less(self):
        passed = depth_test(DepthFunc.LESS, np.array([0.2, 0.9]),
                            np.array([0.5, 0.5]))
        assert passed.tolist() == [True, False]

    def test_lequal_accepts_ties(self):
        passed = depth_test(DepthFunc.LEQUAL, np.array([0.5]),
                            np.array([0.5]))
        assert passed.tolist() == [True]

    def test_greater(self):
        passed = depth_test(DepthFunc.GREATER, np.array([0.9, 0.1]),
                            np.array([0.5, 0.5]))
        assert passed.tolist() == [True, False]

    def test_always_and_never(self):
        depths = np.array([0.1, 0.9])
        buffer = np.array([0.5, 0.5])
        assert depth_test(DepthFunc.ALWAYS, depths, buffer).all()
        assert not depth_test(DepthFunc.NEVER, depths, buffer).any()

    def test_equal_notequal(self):
        depths = np.array([0.5, 0.4])
        buffer = np.array([0.5, 0.5])
        assert depth_test(DepthFunc.EQUAL, depths, buffer).tolist() == \
            [True, False]
        assert depth_test(DepthFunc.NOTEQUAL, depths, buffer).tolist() == \
            [False, True]

    def test_order_independence_classification(self):
        assert is_order_independent(DepthFunc.LESS)
        assert is_order_independent(DepthFunc.GEQUAL)
        assert not is_order_independent(DepthFunc.EQUAL)
        assert not is_order_independent(DepthFunc.NOTEQUAL)


class TestFramebuffer:
    def test_clear_state(self):
        fb = Framebuffer(8, 4, clear_color=(0.1, 0.2, 0.3, 1.0))
        assert fb.color.shape == (4, 8, 4)
        assert np.allclose(fb.color[0, 0], [0.1, 0.2, 0.3, 1.0])
        assert (fb.depth == DEPTH_CLEAR).all()

    def test_rejects_empty(self):
        with pytest.raises(PipelineError):
            Framebuffer(0, 4)

    def test_copy_is_independent(self):
        fb = Framebuffer(4, 4)
        dup = fb.copy()
        dup.color[0, 0] = 1.0
        assert fb.color[0, 0, 0] == 0.0

    def test_same_image_tolerance(self):
        a, b = Framebuffer(4, 4), Framebuffer(4, 4)
        b.color += 1e-6
        assert a.same_image(b)
        b.color += 0.1
        assert not a.same_image(b)

    def test_same_image_different_sizes(self):
        assert not Framebuffer(4, 4).same_image(Framebuffer(8, 8))

    def test_size_bytes(self):
        fb = Framebuffer(10, 10)
        assert fb.size_bytes(pixel_bytes=8) == 800

    def test_ppm_roundtrip(self, tmp_path):
        fb = Framebuffer(3, 2)
        fb.color[..., 0] = 1.0  # pure red
        path = tmp_path / "out.ppm"
        fb.write_ppm(str(path))
        data = path.read_bytes()
        assert data.startswith(b"P6\n3 2\n255\n")
        assert data.endswith(bytes([255, 0, 0]) * 6)

    def test_srgb_bytes_clamped(self):
        fb = Framebuffer(2, 2)
        fb.color[..., 1] = 2.0
        fb.color[..., 2] = -1.0
        quantized = fb.to_srgb_bytes()
        assert quantized[..., 1].max() == 255
        assert quantized[..., 2].min() == 0


class TestSurfacePool:
    def test_lazy_creation(self):
        pool = SurfacePool(8, 8)
        assert pool.target_ids == ()
        pool.render_target(2)
        assert pool.target_ids == (2,)

    def test_same_target_returned(self):
        pool = SurfacePool(8, 8)
        assert pool.render_target(0) is pool.render_target(0)

    def test_depth_buffer_cleared_to_far(self):
        pool = SurfacePool(8, 8)
        assert (pool.depth_buffer(1) == DEPTH_CLEAR).all()

    def test_reset_clears_everything(self):
        pool = SurfacePool(8, 8)
        pool.render_target(0).color[:] = 1.0
        pool.depth_buffer(0)[:] = 0.25
        pool.reset()
        assert (pool.render_target(0).color == 0).all()
        assert (pool.depth_buffer(0) == DEPTH_CLEAR).all()

    def test_install_render_target(self):
        pool = SurfacePool(8, 8)
        custom = Framebuffer(8, 8)
        pool.install_render_target(3, custom)
        assert pool.render_target(3) is custom

    def test_install_size_mismatch_rejected(self):
        pool = SurfacePool(8, 8)
        with pytest.raises(PipelineError):
            pool.install_render_target(0, Framebuffer(4, 4))
        with pytest.raises(PipelineError):
            pool.install_depth_buffer(0, np.zeros((4, 4), np.float32))
