"""Shared fixtures: small traces and setups reused across the test suite.

Session-scoped fixtures exploit the library's internal caches so the
expensive functional renders run once per session.
"""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.harness import make_setup
from repro.sim import Simulator
from repro.traces import TraceSpec, load_benchmark, synthesize


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture(scope="session")
def tiny_setup():
    """The Table II system at tiny trace scale (8 GPUs)."""
    return make_setup(scale="tiny", num_gpus=8)


@pytest.fixture(scope="session")
def cod2_tiny():
    return load_benchmark("cod2", "tiny")


@pytest.fixture(scope="session")
def micro_trace():
    """A very small but structurally complete synthetic trace."""
    spec = TraceSpec(name="micro", width=64, height=64, num_draws=24,
                     num_triangles=600, seed=7, rt_switches=1,
                     depth_toggle_events=1, depth_func_events=1,
                     cost_multiplier=4.0)
    return synthesize(spec)


@pytest.fixture(scope="session")
def micro_setup():
    """A 4-GPU system matched to the micro trace."""
    config = SystemConfig(num_gpus=4, tile_size=8, composition_threshold=32)
    from repro.timing.costs import CostModel
    from repro.harness.runner import Setup
    return Setup(scale="tiny", config=config, costs=CostModel(gpu=config.gpu))


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
