"""The functional graphics pipeline end to end."""

import numpy as np
import pytest

from repro.framebuffer import DEPTH_CLEAR, SurfacePool
from repro.geometry import (BlendOp, DepthFunc, DrawCommand, RenderState,
                            fullscreen_quad)
from repro.raster import GraphicsPipeline, TileGrid
from repro.errors import PipelineError


def ndc_quad(x0, y0, x1, y1, depth, color=(1, 1, 1, 1), **state_kwargs):
    quad = np.array([
        [[x0, y0, depth], [x1, y0, depth], [x1, y1, depth]],
        [[x0, y0, depth], [x1, y1, depth], [x0, y1, depth]],
    ], dtype=np.float32)
    colors = np.tile(np.asarray(color, dtype=np.float32), (2, 3, 1))
    return DrawCommand(draw_id=0, positions=quad, colors=colors,
                       state=RenderState(**state_kwargs))


@pytest.fixture()
def pipe():
    return GraphicsPipeline(32, 32)


@pytest.fixture()
def pool():
    return SurfacePool(32, 32)


class TestBasicRendering:
    def test_fullscreen_quad_fills_target(self, pipe, pool):
        metrics = pipe.execute_draw(fullscreen_quad((0.5, 0.25, 0.125, 1.0)),
                                    pool)
        fb = pool.render_target(0)
        assert metrics.pixels_written == 32 * 32
        assert np.allclose(fb.color[..., :3], [0.5, 0.25, 0.125], atol=1e-5)

    def test_depth_buffer_updated(self, pipe, pool):
        pipe.execute_draw(ndc_quad(-1, -1, 1, 1, depth=0.5), pool)
        assert np.allclose(pool.depth_buffer(0), 0.5, atol=1e-5)

    def test_closer_draw_wins(self, pipe, pool):
        pipe.execute_draw(ndc_quad(-1, -1, 1, 1, 0.5, (1, 0, 0, 1)), pool)
        pipe.execute_draw(ndc_quad(-1, -1, 1, 1, 0.2, (0, 1, 0, 1)), pool)
        assert np.allclose(pool.render_target(0).color[16, 16, :3], [0, 1, 0])

    def test_farther_draw_culled(self, pipe, pool):
        pipe.execute_draw(ndc_quad(-1, -1, 1, 1, 0.2, (1, 0, 0, 1)), pool)
        metrics = pipe.execute_draw(
            ndc_quad(-1, -1, 1, 1, 0.5, (0, 1, 0, 1)), pool)
        assert metrics.fragments_passed == 0
        assert metrics.fragments_shaded == 0
        assert np.allclose(pool.render_target(0).color[16, 16, :3], [1, 0, 0])

    def test_offscreen_draw_culled_in_geometry(self, pipe, pool):
        metrics = pipe.execute_draw(ndc_quad(2, 2, 3, 3, 0.5), pool)
        assert metrics.triangles_culled == 2
        assert metrics.fragments_generated == 0

    def test_empty_draw_is_noop(self, pipe, pool):
        draw = DrawCommand(draw_id=0,
                           positions=np.empty((0, 3, 3), np.float32),
                           colors=np.empty((0, 3, 4), np.float32))
        metrics = pipe.execute_draw(draw, pool)
        assert metrics.fragments_generated == 0

    def test_render_target_selection(self, pipe, pool):
        pipe.execute_draw(ndc_quad(-1, -1, 1, 1, 0.5, (1, 0, 0, 1),
                                   render_target=2, depth_buffer=2), pool)
        assert (pool.render_target(0).color == 0).all()
        assert np.allclose(pool.render_target(2).color[0, 0, :3], [1, 0, 0])

    def test_viewport_must_be_positive(self):
        with pytest.raises(PipelineError):
            GraphicsPipeline(0, 32)


class TestDepthModes:
    def test_depth_write_disabled_leaves_buffer(self, pipe, pool):
        pipe.execute_draw(ndc_quad(-1, -1, 1, 1, 0.5, depth_write=False),
                          pool)
        assert (pool.depth_buffer(0) == DEPTH_CLEAR).all()

    def test_late_z_shades_before_test(self, pipe, pool):
        pipe.execute_draw(ndc_quad(-1, -1, 1, 1, 0.2), pool)
        metrics = pipe.execute_draw(
            ndc_quad(-1, -1, 1, 1, 0.5, early_z=False), pool)
        # all fragments shaded even though none pass
        assert metrics.fragments_shaded == 32 * 32
        assert metrics.late_passed == 0
        assert metrics.pixels_written == 0

    def test_greater_func_inverts_result(self, pipe, pool):
        pipe.execute_draw(ndc_quad(-1, -1, 1, 1, 0.5), pool)
        metrics = pipe.execute_draw(
            ndc_quad(-1, -1, 1, 1, 0.9, depth_func=DepthFunc.GREATER), pool)
        assert metrics.fragments_passed == 32 * 32


class TestBlending:
    def test_over_blends_with_background(self, pipe, pool):
        pipe.execute_draw(ndc_quad(-1, -1, 1, 1, 0.9, (1, 0, 0, 1)), pool)
        # premultiplied half-transparent green
        pipe.execute_draw(
            ndc_quad(-1, -1, 1, 1, 0.5, (0, 0.5, 0, 0.5),
                     blend_op=BlendOp.OVER, depth_write=False), pool)
        assert np.allclose(pool.render_target(0).color[16, 16, :3],
                           [0.5, 0.5, 0.0], atol=1e-5)

    def test_additive_saturates(self, pipe, pool):
        pipe.execute_draw(ndc_quad(-1, -1, 1, 1, 0.9, (0.8, 0, 0, 1)), pool)
        pipe.execute_draw(
            ndc_quad(-1, -1, 1, 1, 0.5, (0.8, 0, 0, 0),
                     blend_op=BlendOp.ADDITIVE, depth_write=False), pool)
        assert np.allclose(pool.render_target(0).color[16, 16, 0], 1.0)


class TestOwnerAttribution:
    def test_by_owner_sums_match_totals(self, pipe, pool):
        grid = TileGrid(32, 32, tile_size=8)
        owner_map = grid.owner_map(4)
        metrics = pipe.execute_draw(fullscreen_quad((1, 1, 1, 1)), pool,
                                    owner_map=owner_map, num_owners=4)
        assert metrics.generated_by_owner.sum() == metrics.fragments_generated
        assert metrics.shaded_by_owner.sum() == metrics.fragments_shaded
        assert metrics.passed_by_owner.sum() == metrics.fragments_passed

    def test_owner_mask_restricts_fragments(self, pipe, pool):
        grid = TileGrid(32, 32, tile_size=8)
        mask = grid.gpu_pixel_mask(0, 4)
        metrics = pipe.execute_draw(fullscreen_quad((1, 1, 1, 1)), pool,
                                    owner_mask=mask)
        assert metrics.fragments_generated == int(mask.sum())

    def test_mask_and_map_agree(self, pipe):
        grid = TileGrid(32, 32, tile_size=8)
        owner_map = grid.owner_map(4)
        pool_a, pool_b = SurfacePool(32, 32), SurfacePool(32, 32)
        full = pipe.execute_draw(fullscreen_quad((1, 1, 1, 1)), pool_a,
                                 owner_map=owner_map, num_owners=4)
        masked = pipe.execute_draw(
            fullscreen_quad((1, 1, 1, 1)), pool_b,
            owner_mask=grid.gpu_pixel_mask(2, 4))
        assert masked.fragments_shaded == int(full.shaded_by_owner[2])


class TestTouchedAndRetained:
    def test_touched_mask_records_writes(self, pipe, pool):
        touched = np.zeros((32, 32), dtype=bool)
        pipe.execute_draw(ndc_quad(-1, 0, 0, 1, 0.5), pool, touched=touched)
        assert touched.any()
        assert not touched.all()

    def test_retained_fraction_inflates_shading_only(self, pipe, pool):
        pipe.execute_draw(ndc_quad(-1, -1, 1, 1, 0.2), pool)
        rng = np.random.default_rng(0)
        metrics = pipe.execute_draw(ndc_quad(-1, -1, 1, 1, 0.5), pool,
                                    retained_cull_fraction=0.5, rng=rng)
        assert metrics.fragments_passed == 0
        assert metrics.pixels_written == 0
        # roughly half of the 1024 culled fragments shaded anyway
        assert 380 <= metrics.fragments_shaded <= 640

    def test_metrics_merge(self, pipe, pool):
        first = pipe.execute_draw(ndc_quad(-1, -1, 0, 0, 0.5), pool)
        second = pipe.execute_draw(ndc_quad(0, 0, 1, 1, 0.5), pool)
        total = first.fragments_shaded + second.fragments_shaded
        first.merge(second)
        assert first.fragments_shaded == total
