"""End-to-end integration: paper-shape assertions and failure injection.

These tests assert the *qualitative reproduction targets* from DESIGN.md —
who wins, in which direction knobs move — on a benchmark subset, plus
robustness scenarios (degraded links, straggler GPUs).
"""

import numpy as np
import pytest

from repro.harness import compare, make_setup, run_benchmark
from repro.harness import experiments as E
from repro.stats import gmean
from repro.timing.costs import CostModel

SUBSET = ("cod2", "wolf", "stal")


class TestPaperShape:
    def test_chopin_beats_duplication_and_gpupd(self):
        table = E.fig13_performance(benchmarks=SUBSET)
        means = table["GMean"]
        assert means["chopin+sched"] > 1.05
        assert means["chopin+sched"] > means["gpupd"]

    def test_ideal_chopin_is_upper_bound(self):
        table = E.fig13_performance(benchmarks=SUBSET)
        for bench in SUBSET:
            assert table[bench]["chopin-ideal"] \
                >= table[bench]["chopin+sched"] * 0.999
            assert table[bench]["chopin-ideal"] \
                >= table[bench]["chopin"] * 0.999

    def test_chopin_close_to_ideal(self):
        """Paper: CHOPIN+CompSched within ~5% of IdealCHOPIN."""
        table = E.fig13_performance(benchmarks=SUBSET)
        gap = table["GMean"]["chopin-ideal"] / table["GMean"]["chopin+sched"]
        assert gap < 1.15

    def test_round_robin_clearly_worse(self):
        setup = make_setup("tiny")
        ratios = []
        for bench in SUBSET:
            speeds = compare(bench, setup, schemes=("chopin+sched",
                                                    "chopin-rr"))
            ratios.append(speeds["chopin-rr"] / speeds["chopin+sched"])
        assert gmean(ratios) < 0.97

    def test_chopin_scales_with_bandwidth(self):
        table = E.fig20_bandwidth(benchmarks=SUBSET,
                                  bandwidths=(16.0, 128.0),
                                  schemes=("chopin+sched",))
        chopin_gain = table[128.0]["chopin+sched"] / \
            table[16.0]["chopin+sched"]
        assert chopin_gain > 1.05

    def test_gpupd_latency_sensitive(self):
        table = E.fig21_latency(benchmarks=SUBSET, latencies=(100, 400),
                                schemes=("gpupd", "chopin+sched"))
        gpupd_loss = table[100]["gpupd"] / table[400]["gpupd"]
        chopin_loss = table[100]["chopin+sched"] / table[400]["chopin+sched"]
        assert gpupd_loss > 1.10          # sequential exchange hurts badly
        assert chopin_loss < gpupd_loss   # CHOPIN much less sensitive

    def test_chopin_advantage_grows_with_gpu_count(self):
        table = E.fig19_gpu_scaling(benchmarks=SUBSET, gpu_counts=(2, 8),
                                    schemes=("chopin+sched",))
        assert table[8]["chopin+sched"] > table[2]["chopin+sched"]

    def test_threshold_insensitivity(self):
        """Paper Fig 22: the composition threshold barely matters."""
        table = E.fig22_threshold(benchmarks=SUBSET,
                                  thresholds=(1024, 4096, 16384),
                                  schemes=("chopin+sched",))
        values = [table[t]["chopin+sched"] for t in (1024, 4096, 16384)]
        assert max(values) / min(values) < 1.3

    def test_update_interval_insensitivity(self):
        """Paper Fig 18: 1 -> 1024-triangle updates cost only a few %."""
        table = E.fig18_update_interval(benchmarks=SUBSET,
                                        intervals=(1, 1024),
                                        schemes=("chopin+sched",))
        ratio = table[1]["chopin+sched"] / table[1024]["chopin+sched"]
        assert 0.85 < ratio < 1.2


class TestFailureInjection:
    def test_severely_degraded_link_kills_chopin_gains(self):
        """With a 1 GB/s interconnect, composition dominates and CHOPIN
        falls behind duplication — gracefully, not catastrophically."""
        crippled = make_setup("tiny", bandwidth_gb_per_s=1.0)
        healthy = make_setup("tiny")
        slow = run_benchmark("chopin+sched", "cod2", crippled)
        fast = run_benchmark("chopin+sched", "cod2", healthy)
        assert slow.frame_cycles > fast.frame_cycles
        assert np.isfinite(slow.frame_cycles)
        # image still exactly correct under pressure
        assert np.abs(slow.image.color - fast.image.color).max() < 1e-6

    def test_extreme_latency_still_completes(self):
        setup = make_setup("tiny", latency_cycles=50_000)
        result = run_benchmark("chopin+sched", "cod2", setup)
        assert np.isfinite(result.frame_cycles)

    def test_straggler_gpu_via_slow_issue(self):
        """A pathological driver (huge per-draw issue cost) slows the frame
        but never deadlocks or corrupts the image."""
        setup = make_setup("tiny")
        slow_costs = CostModel(gpu=setup.config.gpu, draw_issue_cost=5000.0)
        from repro.sfr import ChopinWithScheduler
        from repro.traces import load_benchmark
        scheme = ChopinWithScheduler(setup.config, slow_costs)
        result = scheme.run(load_benchmark("cod2", "tiny"))
        baseline = run_benchmark("chopin+sched", "cod2", setup)
        assert result.frame_cycles > baseline.frame_cycles
        assert np.abs(result.image.color
                      - baseline.image.color).max() < 1e-6


class TestScaleConsistency:
    def test_small_scale_agrees_qualitatively(self):
        """The headline ordering holds at the larger 'small' scale too
        (single benchmark to keep runtime in check)."""
        setup = make_setup("small")
        speeds = compare("cod2", setup, schemes=("gpupd", "chopin+sched"))
        assert speeds["chopin+sched"] > speeds["gpupd"]
