"""The frame-serving daemon: overload, faults, SLOs, determinism.

Pins down repro.serve's contract:

1. *bounded overload*: at saturating arrival rates the admission queue
   never exceeds its limit, sheds are nonzero and typed, and the
   accounting closes (every submitted request is completed, rejected,
   throttled, or shed — exactly once);
2. *correctness under serving*: a frame served to a client is
   bit-identical to the batch harness's render of the same benchmark;
3. *virtual time*: completion timestamps are nondecreasing and latency
   percentiles are ordered (p50 <= p95 <= p99);
4. *graceful degradation*: a GPU failure mid-run re-queues in-flight
   work against survivors, a dead pool sheds with a typed reason instead
   of hanging, and a watchdog trip degrades the run instead of crashing;
5. *determinism*: the same workload + faults produce a byte-identical
   report.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.errors import ConfigError, ServeOverloadError
from repro.harness import make_setup, run
from repro.serve import (FrameServer, LoadProfile, SloGates, SloSummary,
                         WorkloadSpec, calibrate_service_cycles,
                         generate_workload, gpu_events_from_plan,
                         latency_percentile_cycles, load_workload,
                         save_workload)
from repro.serve.daemon import (POLICY_DEADLINE, POLICY_DROP_NEWEST,
                                POLICY_DROP_OLDEST, gpu_events_from_trace)
from repro.traces import load_benchmark

SCHEME = "chopin+sched"
BENCH = "wolf"


@pytest.fixture(scope="module")
def group_setup():
    """One 2-GPU render group at tiny scale."""
    return make_setup("tiny", num_gpus=2)


@pytest.fixture(scope="module")
def mean_cycles(group_setup):
    _, mean = calibrate_service_cycles(SCHEME, [BENCH], group_setup)
    return mean


@pytest.fixture(scope="module")
def saturating_workload(mean_cycles):
    """4x pool capacity: guaranteed overload even with light batching."""
    profile = LoadProfile(sessions=3, rate_x=4.0, duration_x=20.0, seed=1)
    return generate_workload(profile, [BENCH], mean_cycles, groups=2)


def serve_once(setup, workload, **kwargs):
    kwargs.setdefault("groups", 2)
    return FrameServer(SCHEME, setup, workload, **kwargs).serve()


def closure(report):
    s = report.stats
    return (s.serve_completed + s.serve_rejected + s.serve_throttled
            + s.serve_shed)


# ------------------------------------------------------------------ loadgen


class TestLoadgen:
    def test_same_seed_same_arrivals(self, mean_cycles):
        profile = LoadProfile(sessions=2, seed=42, duration_x=10.0)
        a = generate_workload(profile, [BENCH], mean_cycles, groups=2)
        b = generate_workload(profile, [BENCH], mean_cycles, groups=2)
        assert a.arrivals == b.arrivals

    def test_different_seed_different_arrivals(self, mean_cycles):
        base = LoadProfile(sessions=2, seed=1, duration_x=10.0)
        other = LoadProfile(sessions=2, seed=2, duration_x=10.0)
        a = generate_workload(base, [BENCH], mean_cycles, groups=2)
        b = generate_workload(other, [BENCH], mean_cycles, groups=2)
        assert a.arrivals != b.arrivals

    def test_adding_a_session_is_stable(self, mean_cycles):
        """Per-session sha256 streams: session 0 is unchanged by session 2.

        rate_x scales with the session count here so each session's own
        arrival rate stays fixed; only then is stream independence
        observable.
        """
        two = LoadProfile(sessions=2, rate_x=2.0, seed=9, duration_x=10.0)
        three = LoadProfile(sessions=3, rate_x=3.0, seed=9,
                            duration_x=10.0)
        a = generate_workload(two, [BENCH], mean_cycles, groups=2)
        b = generate_workload(three, [BENCH], mean_cycles, groups=2)
        assert ([x for x in a.arrivals if x.session == 0]
                == [x for x in b.arrivals if x.session == 0])

    def test_rate_scales_arrival_count(self, mean_cycles):
        lo = LoadProfile(sessions=2, rate_x=1.0, duration_x=30.0, seed=5)
        hi = LoadProfile(sessions=2, rate_x=4.0, duration_x=30.0, seed=5)
        a = generate_workload(lo, [BENCH], mean_cycles, groups=2)
        b = generate_workload(hi, [BENCH], mean_cycles, groups=2)
        assert len(b.arrivals) > 2 * len(a.arrivals)

    def test_arrivals_sorted_within_duration(self, saturating_workload):
        times = [a.time for a in saturating_workload.arrivals]
        assert times == sorted(times)
        assert all(0 <= t < saturating_workload.duration_cycles
                   for t in times)

    def test_burst_profile_clusters_arrivals(self, mean_cycles):
        profile = LoadProfile(kind="burst", sessions=2, rate_x=2.0,
                              duration_x=40.0, seed=3, burst_x=8.0,
                              burst_period_x=10.0, burst_len_x=2.0)
        workload = generate_workload(profile, [BENCH], mean_cycles,
                                     groups=2)
        period = 10.0 * mean_cycles
        in_burst = sum(1 for a in workload.arrivals
                       if (a.time % period) < 2.0 * mean_cycles)
        # bursts cover 20% of the time but carry the majority of arrivals
        assert in_burst > len(workload.arrivals) / 2

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigError, match="unknown load profile"):
            LoadProfile(kind="sawtooth")

    def test_save_load_round_trip(self, saturating_workload, tmp_path):
        path = tmp_path / "wl.json"
        save_workload(saturating_workload, path)
        loaded = load_workload(path)
        assert loaded == saturating_workload

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_workload(path)
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ConfigError, match="not a request workload"):
            load_workload(path)


# ---------------------------------------------------------------------- SLO


class TestSlo:
    def test_nearest_rank_percentiles(self):
        samples = sorted(float(v) for v in range(1, 101))
        assert latency_percentile_cycles(samples, 50.0) == 50.0
        assert latency_percentile_cycles(samples, 99.0) == 99.0
        assert latency_percentile_cycles(samples, 100.0) == 100.0
        assert latency_percentile_cycles([7.0], 99.0) == 7.0
        assert latency_percentile_cycles([], 99.0) == 0.0

    def test_summary_orders_percentiles(self):
        summary = SloSummary.from_latencies([5.0, 1.0, 9.0, 3.0], 100.0)
        assert summary.completed == 4
        assert (summary.p50_cycles <= summary.p95_cycles
                <= summary.p99_cycles == summary.max_cycles == 9.0)
        assert summary.throughput_per_mcycle == pytest.approx(4e4)

    def test_gate_validation(self):
        with pytest.raises(ValueError):
            SloGates(max_shed_rate=1.5)
        with pytest.raises(ValueError):
            SloGates(max_p99_x=0.0)
        assert not SloGates().enabled


# ----------------------------------------------------------------- overload


class TestOverload:
    def test_queue_bounded_and_sheds_typed(self, group_setup,
                                           saturating_workload):
        report = serve_once(group_setup, saturating_workload,
                            queue_limit=8, batch_limit=1)
        stats = report.stats
        assert stats.serve_requests == len(saturating_workload.arrivals)
        assert stats.serve_queue_peak <= 8
        assert stats.serve_rejected > 0
        assert report.shed_reasons.get("queue-full", 0) > 0
        assert closure(report) == stats.serve_requests
        assert not report.degraded

    def test_latencies_monotone_in_virtual_time(self, group_setup,
                                                saturating_workload):
        report = serve_once(group_setup, saturating_workload,
                            queue_limit=8, batch_limit=1)
        times = report.completion_times_cycles
        assert times == sorted(times)
        assert (report.slo.p50_cycles <= report.slo.p95_cycles
                <= report.slo.p99_cycles <= report.slo.max_cycles)

    def test_served_frames_bit_identical_to_batch(self, group_setup,
                                                  saturating_workload):
        report_server = FrameServer(SCHEME, group_setup,
                                    saturating_workload, groups=2,
                                    queue_limit=8)
        report_server.serve()
        served = report_server.rendered_results[BENCH]
        batch = run(SCHEME, load_benchmark(BENCH, "tiny"), group_setup)
        assert np.array_equal(served.image.color, batch.image.color)
        assert np.array_equal(served.image.depth, batch.image.depth)
        assert served.frame_cycles == batch.frame_cycles

    def test_batching_amortizes_overload(self, group_setup,
                                         saturating_workload):
        solo = serve_once(group_setup, saturating_workload,
                          queue_limit=8, batch_limit=1)
        batched = serve_once(group_setup, saturating_workload,
                             queue_limit=8, batch_limit=4)
        assert (batched.stats.serve_completed
                > solo.stats.serve_completed)
        assert (batched.stats.serve_batches
                < batched.stats.serve_completed)

    def test_deterministic_report(self, group_setup, saturating_workload):
        a = serve_once(group_setup, saturating_workload, queue_limit=8)
        b = serve_once(group_setup, saturating_workload, queue_limit=8)
        assert a.to_dict() == b.to_dict()

    def test_empty_workload_drains_immediately(self, group_setup,
                                               mean_cycles):
        profile = LoadProfile(sessions=1, duration_x=1.0)
        empty = WorkloadSpec(profile=profile, benchmarks=(BENCH,),
                             mean_service_cycles=mean_cycles,
                             duration_cycles=mean_cycles, arrivals=())
        report = serve_once(group_setup, empty)
        assert report.stats.serve_requests == 0
        assert report.shed_rate == 0.0
        assert not report.degraded


# ----------------------------------------------------------------- policies


class TestPolicies:
    def test_drop_oldest_evicts_instead_of_rejecting(self, group_setup,
                                                     saturating_workload):
        newest = serve_once(group_setup, saturating_workload,
                            queue_limit=8, batch_limit=1,
                            policy=POLICY_DROP_NEWEST)
        oldest = serve_once(group_setup, saturating_workload,
                            queue_limit=8, batch_limit=1,
                            policy=POLICY_DROP_OLDEST)
        assert newest.shed_reasons.get("evicted", 0) == 0
        assert oldest.shed_reasons.get("evicted", 0) > 0
        # eviction favors fresh work: admitted count goes up
        assert (oldest.stats.serve_admitted
                > newest.stats.serve_admitted)
        assert closure(oldest) == oldest.stats.serve_requests

    def test_deadline_policy_shreds_expired_first(self, group_setup,
                                                  saturating_workload):
        report = serve_once(group_setup, saturating_workload,
                            queue_limit=8, batch_limit=1,
                            policy=POLICY_DEADLINE, deadline_x=3.0)
        assert report.shed_reasons.get("deadline", 0) > 0
        # anything completed past its deadline is counted as a miss, and
        # served requests still close the books
        assert closure(report) == report.stats.serve_requests

    def test_unknown_policy_rejected(self, group_setup,
                                     saturating_workload):
        with pytest.raises(ConfigError, match="unknown shedding policy"):
            serve_once(group_setup, saturating_workload,
                       policy="drop-random")

    def test_token_bucket_throttles_heavy_sessions(self, group_setup,
                                                   saturating_workload):
        report = serve_once(group_setup, saturating_workload,
                            queue_limit=32, budget_x=0.5)
        assert report.stats.serve_throttled > 0
        assert report.shed_reasons.get("budget", 0) > 0
        assert closure(report) == report.stats.serve_requests


# ------------------------------------------------------------------- faults


class TestFaults:
    def test_group_failure_requeues_in_flight(self, group_setup,
                                              saturating_workload):
        fail_at = saturating_workload.duration_cycles * 0.25
        report = serve_once(group_setup, saturating_workload,
                            queue_limit=8, batch_limit=2,
                            fault_events=[(fail_at, 0, "gpu_fail")])
        assert report.stats.serve_requeued > 0
        assert any(e.kind == "group-fail" for e in report.events)
        assert closure(report) == report.stats.serve_requests
        assert not report.degraded

    def test_dead_pool_sheds_typed_and_drains(self, group_setup,
                                              saturating_workload):
        fail_at = saturating_workload.duration_cycles * 0.25
        report = serve_once(group_setup, saturating_workload,
                            queue_limit=8,
                            fault_events=[(fail_at, 0, "gpu_fail"),
                                          (fail_at, 2, "gpu_fail")])
        assert report.shed_reasons.get("no-survivors", 0) > 0
        assert closure(report) == report.stats.serve_requests
        # after the pool dies nothing completes, but nothing hangs either
        assert report.drained_at_cycles > 0

    def test_repair_revives_the_group(self, group_setup,
                                      saturating_workload):
        fail_at = saturating_workload.duration_cycles * 0.25
        back_at = saturating_workload.duration_cycles * 0.5
        dead = serve_once(group_setup, saturating_workload,
                          queue_limit=8, batch_limit=1,
                          fault_events=[(fail_at, 0, "gpu_fail")])
        revived = serve_once(group_setup, saturating_workload,
                             queue_limit=8, batch_limit=1,
                             fault_events=[(fail_at, 0, "gpu_fail"),
                                           (back_at, 0, "gpu_repair")])
        assert any(e.kind == "group-revive" for e in revived.events)
        assert (revived.stats.serve_completed
                > dead.stats.serve_completed)
        assert closure(revived) == revived.stats.serve_requests

    def test_faulted_run_stays_bit_identical(self, group_setup,
                                             saturating_workload):
        fail_at = saturating_workload.duration_cycles * 0.25
        server = FrameServer(SCHEME, group_setup, saturating_workload,
                             groups=2, queue_limit=8, batch_limit=2,
                             fault_events=[(fail_at, 0, "gpu_fail")])
        server.serve()
        served = server.rendered_results[BENCH]
        batch = run(SCHEME, load_benchmark(BENCH, "tiny"), group_setup)
        assert np.array_equal(served.image.color, batch.image.color)
        assert np.array_equal(served.image.depth, batch.image.depth)

    def test_fault_event_validation(self, group_setup,
                                    saturating_workload):
        with pytest.raises(ConfigError, match="only understands"):
            serve_once(group_setup, saturating_workload,
                       fault_events=[(1.0, 0, "gpu_meltdown")])
        with pytest.raises(ConfigError, match="pool has 4 GPUs"):
            serve_once(group_setup, saturating_workload,
                       fault_events=[(1.0, 9, "gpu_fail")])

    def test_events_from_plan_and_trace(self, group_setup):
        from repro.faults import parse_fault_plan
        from repro.faults.traces import TraceGenConfig, generate_trace
        plan = parse_fault_plan("fail=1@5000")
        assert gpu_events_from_plan(plan) == [(5000.0, 1, "gpu_fail")]
        pool = make_setup("tiny", num_gpus=4)
        trace = generate_trace(pool.config, TraceGenConfig(
            seed=11, frames=4, frame_cycles=100_000.0,
            gpu_mttf_cycles=150_000.0, gpu_mttr_cycles=50_000.0,
            link_mttf_cycles=None, degrade_mttf_cycles=None))
        events = gpu_events_from_trace(trace)
        assert events, "trace parameters should produce GPU episodes"
        assert all(kind in ("gpu_fail", "gpu_repair")
                   for _, _, kind in events)


# --------------------------------------------------------------- durability


class TestDegradedMode:
    def test_watchdog_trip_degrades_instead_of_crashing(
            self, saturating_workload, mean_cycles):
        setup = make_setup("tiny", num_gpus=2,
                           watchdog_cycles=mean_cycles * 5)
        report = serve_once(setup, saturating_workload, queue_limit=8)
        assert report.degraded
        assert report.stats.serve_degraded_events > 0
        assert report.shed_reasons.get("watchdog", 0) > 0
        assert any(e.kind == "watchdog-trip" for e in report.events)
        assert closure(report) == report.stats.serve_requests

    def test_shared_store_hit_rate_per_session(self, group_setup,
                                               saturating_workload):
        report = serve_once(group_setup, saturating_workload,
                            queue_limit=16)
        # the module-scoped calibration already rendered wolf, so every
        # session serves from the shared artifact store
        for session in report.sessions:
            if session.completed:
                assert session.hit_rate == 1.0
        assert report.artifact_hit_rate == 1.0


# ---------------------------------------------------------------------- CLI


class TestServeCli:
    def test_loadgen_then_serve_within_slo(self, tmp_path, capsys):
        workload = tmp_path / "wl.json"
        assert main(["loadgen", str(workload), "--benchmarks", BENCH,
                     "--scale", "tiny", "--gpus", "2", "--groups", "2",
                     "--rate-x", "2.0", "--duration-x", "15",
                     "--seed", "3"]) == 0
        csv_path = tmp_path / "serve.csv"
        json_path = tmp_path / "serve.json"
        assert main(["serve", BENCH, "--scale", "tiny", "--gpus", "2",
                     "--groups", "2", "--load", str(workload),
                     "--queue-limit", "16",
                     "--csv", str(csv_path), "--json", str(json_path),
                     "--max-shed-rate", "0.95",
                     "--max-p99-x", "100"]) == 0
        out = capsys.readouterr().out
        assert "requests" in out and "latency" in out
        header = csv_path.read_text().splitlines()[0]
        assert "latency_p99_cycles" in header
        data = json.loads(json_path.read_text())
        assert data["stats"]["serve_requests"] > 0
        assert data["shed_rate"] <= 0.95

    def test_slo_breach_exits_8(self, tmp_path, capsys):
        assert main(["serve", BENCH, "--scale", "tiny", "--gpus", "2",
                     "--groups", "2", "--rate-x", "4.0",
                     "--duration-x", "15", "--queue-limit", "4",
                     "--batch-limit", "1",
                     "--max-shed-rate", "0.0"]) == 8

    def test_watchdog_degraded_exits_9(self, capsys):
        assert main(["serve", BENCH, "--scale", "tiny", "--gpus", "2",
                     "--groups", "2", "--rate-x", "2.0",
                     "--duration-x", "15",
                     "--watchdog-cycles", "800000"]) == 9
        assert "DEGRADED" in capsys.readouterr().out
