"""Property-based tests on protocols and serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ImageCompositionScheduler, adjacency_pairs
from repro.sim import Simulator
from repro.traces import TraceSpec, synthesize
from repro.traces.io import load_trace, save_trace


class TestSchedulerProtocolProperties:
    @given(num_gpus=st.integers(2, 10), seed=st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_random_drain_order_always_completes(self, num_gpus, seed):
        """No matter the order GPUs become ready and receivers poll, the
        pairing protocol drains every (sender, receiver) pair exactly once
        and never wedges."""
        rng = np.random.default_rng(seed)
        sched = ImageCompositionScheduler(num_gpus, Simulator())
        sched.start_group(0)
        for gpu in rng.permutation(num_gpus):
            sched.mark_ready(int(gpu))
        transfers = []
        stall_guard = 0
        while not sched.all_done():
            stall_guard += 1
            assert stall_guard < 10_000, "protocol wedged"
            receiver = int(rng.integers(0, num_gpus))
            sender = sched.find_sender_for(receiver)
            if sender is None:
                continue
            sched.begin(sender, receiver)
            sched.complete(sender, receiver)
            transfers.append((sender, receiver))
        assert len(transfers) == num_gpus * (num_gpus - 1)
        assert len(set(transfers)) == len(transfers)

    @given(num_gpus=st.integers(2, 10), seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_concurrent_pairs_never_share_a_port(self, num_gpus, seed):
        """While several pairs are in flight, no GPU sends twice or
        receives twice simultaneously."""
        rng = np.random.default_rng(seed)
        sched = ImageCompositionScheduler(num_gpus, Simulator())
        sched.start_group(0)
        for gpu in range(num_gpus):
            sched.mark_ready(gpu)
        in_flight = []
        for _ in range(200):
            if in_flight and rng.random() < 0.4:
                sender, receiver = in_flight.pop(
                    int(rng.integers(0, len(in_flight))))
                sched.complete(sender, receiver)
                continue
            receiver = int(rng.integers(0, num_gpus))
            sender = sched.find_sender_for(receiver)
            if sender is None:
                continue
            sched.begin(sender, receiver)
            in_flight.append((sender, receiver))
            senders = [s for s, _ in in_flight]
            receivers = [r for _, r in in_flight]
            assert len(set(senders)) == len(senders)
            assert len(set(receivers)) == len(receivers)

    @given(num_gpus=st.integers(1, 33))
    @settings(max_examples=40, deadline=None)
    def test_adjacency_tree_merges_everything_into_root(self, num_gpus):
        pairs = adjacency_pairs(num_gpus)
        assert len(pairs) == max(num_gpus - 1, 0)
        alive = set(range(num_gpus))
        for sender, receiver in pairs:
            assert sender in alive and receiver in alive
            assert receiver < sender  # earlier side absorbs later side
            alive.remove(sender)
        assert alive == ({0} if num_gpus else set())


class TestTraceIOProperties:
    @given(num_draws=st.integers(8, 24),
           num_triangles=st.integers(100, 600),
           seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_round_trip_any_synthetic_trace(self, tmp_path_factory,
                                            num_draws, num_triangles,
                                            seed):
        spec = TraceSpec(name="prop", width=48, height=48,
                         num_draws=num_draws,
                         num_triangles=max(num_triangles, 2 * num_draws),
                         seed=seed)
        trace = synthesize(spec)
        path = tmp_path_factory.mktemp("io") / "t.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.num_draws == trace.num_draws
        assert loaded.num_triangles == trace.num_triangles
        for a, b in zip(trace.frame.draws, loaded.frame.draws):
            assert a.state == b.state
            assert np.array_equal(a.positions, b.positions)
