"""The image composition scheduler (§IV-E, Table I, Fig 11/12)."""

import pytest

from repro.core import (CompositionStatus, ImageCompositionScheduler,
                        adjacency_pairs)
from repro.errors import SchedulingError
from repro.sim import Simulator


@pytest.fixture()
def sched():
    scheduler = ImageCompositionScheduler(4, Simulator())
    scheduler.start_group(cgid=1)
    return scheduler


class TestTableFields:
    def test_row_defaults(self):
        row = CompositionStatus()
        assert not row.ready and not row.sending and not row.receiving
        assert row.sent_gpus == set() and row.received_gpus == set()

    def test_row_size_bits_matches_paper(self):
        # 8-bit CGID + 3 flags + two 8-bit vectors = 27 bits per entry
        assert CompositionStatus().size_bits(num_gpus=8) == 27

    def test_table_size_bytes_matches_paper(self):
        scheduler = ImageCompositionScheduler(8)
        assert scheduler.table_size_bytes() == 27


class TestPairing:
    def test_not_ready_finds_nothing(self, sched):
        assert sched.find_sender_for(0) is None

    def test_two_ready_gpus_pair(self, sched):
        sched.mark_ready(0)
        sched.mark_ready(1)
        assert sched.find_sender_for(0) == 1
        assert sched.find_sender_for(1) == 0

    def test_begin_sets_flags(self, sched):
        sched.mark_ready(0)
        sched.mark_ready(1)
        sched.begin(1, 0)
        assert sched.table[1].sending
        assert sched.table[0].receiving

    def test_busy_sender_not_offered(self, sched):
        for gpu in range(3):
            sched.mark_ready(gpu)
        sched.begin(1, 0)
        # GPU2 cannot pull from GPU1 (sending) but can pull from GPU0
        assert sched.find_sender_for(2) == 0

    def test_busy_receiver_finds_nothing(self, sched):
        for gpu in range(3):
            sched.mark_ready(gpu)
        sched.begin(1, 0)
        assert sched.find_sender_for(0) is None  # receiving already

    def test_completed_pair_not_repeated(self, sched):
        sched.mark_ready(0)
        sched.mark_ready(1)
        sched.begin(1, 0)
        sched.complete(1, 0)
        assert sched.find_sender_for(0) is None
        assert 1 in sched.table[0].received_gpus
        assert 0 in sched.table[1].sent_gpus

    def test_double_begin_rejected(self, sched):
        sched.mark_ready(0)
        sched.mark_ready(1)
        sched.begin(1, 0)
        with pytest.raises(SchedulingError):
            sched.begin(1, 0)

    def test_complete_without_begin_rejected(self, sched):
        sched.mark_ready(0)
        sched.mark_ready(1)
        with pytest.raises(SchedulingError):
            sched.complete(1, 0)

    def test_double_ready_rejected(self, sched):
        sched.mark_ready(0)
        with pytest.raises(SchedulingError):
            sched.mark_ready(0)


class TestCompletion:
    def drain(self, sched, n):
        """Greedily run the protocol to completion."""
        for gpu in range(n):
            sched.mark_ready(gpu)
        progress = True
        while progress:
            progress = False
            for receiver in range(n):
                sender = sched.find_sender_for(receiver)
                if sender is not None:
                    sched.begin(sender, receiver)
                    sched.complete(sender, receiver)
                    progress = True

    @pytest.mark.parametrize("n", [2, 3, 4, 8])
    def test_protocol_drains_all_pairs(self, n):
        sched = ImageCompositionScheduler(n, Simulator())
        sched.start_group(0)
        self.drain(sched, n)
        assert sched.all_done()
        for gpu in range(n):
            assert sched.gpu_done(gpu)
            assert len(sched.table[gpu].sent_gpus) == n - 1
            assert len(sched.table[gpu].received_gpus) == n - 1

    def test_restricted_partners(self):
        sched = ImageCompositionScheduler(4, Simulator())
        sched.start_group(0, allowed_partners=[{1}, {0}, {3}, {2}])
        self.drain(sched, 4)
        assert sched.all_done()
        assert sched.table[0].received_gpus == {1}

    def test_partner_list_length_checked(self):
        sched = ImageCompositionScheduler(4, Simulator())
        with pytest.raises(SchedulingError):
            sched.start_group(0, allowed_partners=[{1}])


class TestWaitChange:
    def test_notify_on_ready(self):
        sim = Simulator()
        sched = ImageCompositionScheduler(2, sim)
        sched.start_group(0)
        event = sched.wait_change()
        sched.mark_ready(0)
        assert event.triggered

    def test_notify_on_complete(self):
        sim = Simulator()
        sched = ImageCompositionScheduler(2, sim)
        sched.start_group(0)
        sched.mark_ready(0)
        sched.mark_ready(1)
        sched.begin(1, 0)
        event = sched.wait_change()
        sched.complete(1, 0)
        assert event.triggered

    def test_without_sim_rejected(self):
        sched = ImageCompositionScheduler(2)
        with pytest.raises(SchedulingError):
            sched.wait_change()


class TestAdjacencyPairs:
    def test_eight_gpus_tree(self):
        pairs = adjacency_pairs(8)
        assert pairs == [(1, 0), (3, 2), (5, 4), (7, 6),
                         (2, 0), (6, 4), (4, 0)]

    def test_odd_count(self):
        pairs = adjacency_pairs(5)
        # 4 merges reduce 5 layers to 1
        assert len(pairs) == 4
        receivers = [r for _, r in pairs]
        assert receivers[-1] == 0

    def test_single_gpu_no_pairs(self):
        assert adjacency_pairs(1) == []

    def test_senders_merge_exactly_once(self):
        pairs = adjacency_pairs(8)
        senders = [s for s, _ in pairs]
        assert len(senders) == len(set(senders)) == 7
