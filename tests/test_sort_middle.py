"""Sort-middle SFR: the Molnar-taxonomy completeness scheme."""

import numpy as np
import pytest

from repro.harness import make_setup, run_benchmark
from repro.sfr import SortMiddle
from repro.stats import STAGE_DISTRIBUTION, TRAFFIC_PRIMITIVES
from repro.traces import load_benchmark


@pytest.fixture(scope="module")
def setup():
    return make_setup("tiny", num_gpus=8)


class TestSortMiddle:
    def test_image_matches_duplication(self, setup):
        dup = run_benchmark("duplication", "cod2", setup)
        middle = run_benchmark("sort-middle", "cod2", setup)
        assert np.array_equal(dup.image.color, middle.image.color)

    def test_no_redundant_geometry(self, setup):
        """Each GPU shades ~1/N of the vertices (the scheme's one virtue)."""
        from repro.stats import STAGE_GEOMETRY
        dup = run_benchmark("duplication", "cod2", setup)
        middle = run_benchmark("sort-middle", "cod2", setup)
        dup_geo = dup.stats.stage_cycle_totals()[STAGE_GEOMETRY]
        mid_geo = middle.stats.stage_cycle_totals()[STAGE_GEOMETRY]
        assert mid_geo < dup_geo * 0.25

    def test_attribute_traffic_dwarfs_gpupd(self, setup):
        """The paper's dismissal: geometry output is very large."""
        gpupd = run_benchmark("gpupd", "cod2", setup)
        middle = run_benchmark("sort-middle", "cod2", setup)
        assert middle.stats.traffic_total(TRAFFIC_PRIMITIVES) \
            > 20 * gpupd.stats.traffic_total(TRAFFIC_PRIMITIVES)

    def test_exchange_cost_attributed(self, setup):
        middle = run_benchmark("sort-middle", "cod2", setup)
        assert middle.stats.stage_cycle_totals() \
            .get(STAGE_DISTRIBUTION, 0) > 0

    def test_attribute_size_drives_performance(self, setup):
        trace = load_benchmark("cod2", "tiny")
        light = SortMiddle(setup.config, setup.costs,
                           attribute_bytes=4).run(trace)
        heavy = SortMiddle(setup.config, setup.costs,
                           attribute_bytes=4096).run(trace)
        assert heavy.frame_cycles > light.frame_cycles * 1.5

    def test_loses_to_chopin_on_default_payload(self, setup):
        chopin = run_benchmark("chopin+sched", "cod2", setup)
        middle = run_benchmark("sort-middle", "cod2", setup)
        assert middle.frame_cycles > chopin.frame_cycles
