"""Image-validation utilities."""

import math

import numpy as np
import pytest

from repro.framebuffer import Framebuffer
from repro.harness import make_setup
from repro.traces import load_benchmark
from repro.validation import (image_checksum, psnr, validate_schemes)


class TestPsnr:
    def test_identical_is_infinite(self):
        fb = Framebuffer(8, 8)
        fb.color[:] = 0.5
        assert math.isinf(psnr(fb, fb.copy()))

    def test_known_value(self):
        a, b = Framebuffer(8, 8), Framebuffer(8, 8)
        b.color[:] = 0.1  # mse = 0.01 -> psnr = 20 dB
        assert psnr(a, b) == pytest.approx(20.0)

    def test_more_noise_less_psnr(self):
        a = Framebuffer(8, 8)
        slightly = Framebuffer(8, 8)
        slightly.color[:] = 0.01
        very = Framebuffer(8, 8)
        very.color[:] = 0.2
        assert psnr(a, slightly) > psnr(a, very)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            psnr(Framebuffer(8, 8), Framebuffer(4, 4))


class TestChecksum:
    def test_stable(self):
        fb = Framebuffer(8, 8)
        fb.color[:] = 0.3
        assert image_checksum(fb) == image_checksum(fb.copy())

    def test_sensitive_to_content(self):
        a, b = Framebuffer(8, 8), Framebuffer(8, 8)
        b.color[0, 0, 0] = 1.0
        assert image_checksum(a) != image_checksum(b)

    def test_sub_quantum_noise_invisible(self):
        a, b = Framebuffer(8, 8), Framebuffer(8, 8)
        a.color[:] = 0.5
        b.color[:] = 0.5 + 1e-5
        assert image_checksum(a) == image_checksum(b)


class TestValidateSchemes:
    def test_all_schemes_identical_on_benchmark(self):
        setup = make_setup("tiny", num_gpus=8)
        trace = load_benchmark("wolf", "tiny")
        report = validate_schemes(trace, setup)
        assert report.all_identical, report.summary()
        checksums = {v.checksum for v in report.schemes}
        assert checksums == {report.reference_checksum}

    def test_summary_readable(self):
        setup = make_setup("tiny", num_gpus=8)
        trace = load_benchmark("wolf", "tiny")
        report = validate_schemes(trace, setup, schemes=("duplication",))
        text = report.summary()
        assert "wolf" in text and "OK" in text and "psnr" in text

    def test_golden_checksum_regression(self):
        """The wolf/tiny reference image fingerprint — if this changes, the
        functional pipeline's output changed and every EXPERIMENTS.md
        number needs re-auditing."""
        setup = make_setup("tiny", num_gpus=8)
        trace = load_benchmark("wolf", "tiny")
        report = validate_schemes(trace, setup, schemes=("duplication",))
        assert report.reference_checksum \
            == report.by_scheme()["duplication"].checksum
        # fingerprint is deterministic across runs in one environment
        again = validate_schemes(trace, setup, schemes=("duplication",))
        assert again.reference_checksum == report.reference_checksum
