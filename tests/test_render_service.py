"""The render phase split: RenderService, artifact store, cold/warm parity.

The refactor's core contract: rendering through cached phase artifacts
(geometry, reference pass, CHOPIN prep) — whether warm in memory or
reloaded from disk spill — must be *bit-identical* to a fully cold run,
with identical timing statistics. Anything less and the artifact store
would silently change results depending on sweep order.
"""

import pathlib
import warnings

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.harness.engine import Engine, benchmark_job
from repro.harness.runner import make_setup, run
from repro.render import (ArtifactStore, RenderService, render_service,
                          store_key)
from repro.render import service as service_module
from repro.traces import load_benchmark


@pytest.fixture
def fresh_service(monkeypatch):
    """Swap in an isolated RenderService so tests cannot cross-pollute
    the process-wide store (or leave a dangling tmp disk tier on it)."""
    svc = RenderService()
    monkeypatch.setattr(service_module, "_SERVICE", svc)
    yield svc


def _assert_results_match(a, b):
    assert np.array_equal(a.image.color, b.image.color)
    assert np.array_equal(a.image.depth, b.image.depth)
    assert a.frame_cycles == b.frame_cycles
    assert a.stats.total_triangles == b.stats.total_triangles
    assert a.stats.total_fragments_shaded == b.stats.total_fragments_shaded
    assert a.stats.total_fragments_passed == b.stats.total_fragments_passed
    assert a.stats.stage_cycle_totals() == b.stats.stage_cycle_totals()
    assert a.stats.traffic_total() == b.stats.traffic_total()


class TestStoreKey:
    def test_field_order_independent(self):
        a = store_key("geometry", {"draw": "abc", "width": 64, "height": 64})
        b = store_key("geometry", {"height": 64, "width": 64, "draw": "abc"})
        assert a == b

    def test_kind_namespaces_the_key(self):
        fields = {"trace": "t", "num_gpus": 4}
        assert store_key("reference", fields) != store_key("result", fields)
        assert store_key("reference", fields).startswith("reference-")

    def test_value_changes_the_key(self):
        assert store_key("geometry", {"draw": "a"}) \
            != store_key("geometry", {"draw": "b"})

    def test_non_json_fields_rejected(self):
        with pytest.raises(ConfigError):
            store_key("geometry", {"draw": object()})


class TestStoreLRU:
    def test_entry_cap_evicts_lru(self):
        store = ArtifactStore(max_entries=3)
        for i in range(5):
            store.put(f"k-{i}", np.zeros(4))
        assert len(store) == 3
        assert store.counters.evictions == 2
        assert "k-0" not in store and "k-1" not in store
        assert "k-4" in store

    def test_byte_budget_evicts(self):
        store = ArtifactStore(max_entries=100, max_bytes=3000)
        for i in range(4):
            store.put(f"k-{i}", np.zeros(256, dtype=np.float64))  # 2048 B
        assert store.current_bytes <= 3000 or len(store) == 1
        assert store.counters.evictions >= 3

    def test_get_promotes_recency(self):
        store = ArtifactStore(max_entries=2)
        store.put("a", np.zeros(1))
        store.put("b", np.zeros(1))
        store.get("a")  # now b is LRU
        store.put("c", np.zeros(1))
        assert "a" in store and "c" in store and "b" not in store

    def test_counters_track_hits_and_misses(self):
        store = ArtifactStore()
        assert store.get("missing") == (None, False)
        store.put("k", 1)
        value, found = store.get("k")
        assert found and value == 1
        assert store.counters.hits == 1
        assert store.counters.misses == 1
        assert store.counters.hit_rate == 0.5


class TestColdWarmParity:
    def test_warm_run_bit_identical(self, fresh_service):
        setup = make_setup("tiny", num_gpus=4)
        trace = load_benchmark("wolf", "tiny")
        cold = run("chopin+sched", trace, setup, use_cache=False)
        cold_misses = fresh_service.counters().misses
        assert cold.stats.artifact_misses > 0  # stamped on the result
        warm = run("chopin+sched", trace, setup, use_cache=False)
        _assert_results_match(cold, warm)
        assert warm.stats.artifact_hits > 0
        # the warm pass recomputed no phase artifacts
        assert fresh_service.counters().misses == cold_misses

    def test_disk_spill_reload_bit_identical(self, fresh_service, tmp_path):
        fresh_service.store.attach_disk(str(tmp_path / "store"))
        setup = make_setup("tiny", num_gpus=4)
        trace = load_benchmark("wolf", "tiny")
        cold = run("chopin+sched", trace, setup, use_cache=False)
        assert fresh_service.counters().disk_writes > 0
        # flush memory: the reload must reconstruct artifacts from pickles
        fresh_service.store.drop_memory()
        reloaded = run("chopin+sched", trace, setup, use_cache=False)
        _assert_results_match(cold, reloaded)
        assert fresh_service.counters().disk_loads > 0
        assert reloaded.stats.artifact_disk_loads > 0

    def test_reset_forces_recompute(self, fresh_service):
        setup = make_setup("tiny", num_gpus=4)
        trace = load_benchmark("wolf", "tiny")
        cold = run("duplication", trace, setup, use_cache=False)
        fresh_service.reset()
        assert len(fresh_service.store) == 0
        again = run("duplication", trace, setup, use_cache=False)
        _assert_results_match(cold, again)
        assert again.stats.artifact_misses > 0  # genuinely recomputed

    def test_result_namespace_returns_same_object(self, fresh_service):
        setup = make_setup("tiny", num_gpus=4)
        trace = load_benchmark("wolf", "tiny")
        first = run("duplication", trace, setup)
        second = run("duplication", trace, setup)
        assert second is first  # result-level hit


class TestFingerprints:
    def test_trace_fingerprint_is_content_addressed(self):
        from repro.traces import TraceSpec, synthesize
        spec = TraceSpec(name="fp", width=64, height=64, num_draws=8,
                         num_triangles=200, seed=3)
        assert synthesize(spec).fingerprint == synthesize(spec).fingerprint
        other = TraceSpec(name="fp", width=64, height=64, num_draws=8,
                          num_triangles=200, seed=4)
        assert synthesize(spec).fingerprint != synthesize(other).fingerprint

    def test_draw_fingerprint_ignores_draw_id(self):
        from dataclasses import replace
        trace = load_benchmark("wolf", "tiny")
        draw = trace.frame.draws[0]
        renumbered = replace(draw, draw_id=9999)
        assert renumbered.fingerprint == draw.fingerprint
        assert trace.frame.draws[1].fingerprint != draw.fingerprint


class TestFaultPathShared:
    def test_artifacts_survive_fail_stop_reassignment(self, fresh_service):
        """A fail-stop fault redistributes draws to surviving GPUs; the
        geometry/prep artifacts are assignment-independent, so the faulty
        run must reuse the fault-free run's artifacts and still render
        the exact same image."""
        from repro.faults import FaultPlan, GPUFailure
        trace = load_benchmark("wolf", "tiny")
        clean = run("chopin+sched", trace, make_setup("tiny", num_gpus=8),
                    use_cache=False)
        plan = FaultPlan(seed=5,
                         gpu_failures=(GPUFailure(gpu=2, cycle=50000.0),))
        faulty_setup = make_setup("tiny", num_gpus=8, faults=plan)
        before = fresh_service.counters()
        faulty = run("chopin+sched", trace, faulty_setup, use_cache=False)
        grew = fresh_service.counters().delta(before)
        assert faulty.stats.redistributed_draws > 0
        assert grew.hits > 0  # reused the clean run's phase artifacts
        # functional output is unchanged by the timing-level failure
        assert np.array_equal(clean.image.color, faulty.image.color)


class TestEnginePrewarm:
    def test_run_jobs_prewarms_the_store(self, fresh_service):
        spec = benchmark_job("chopin+sched", "wolf", num_gpus=4)
        eng = Engine()
        eng.run_jobs([spec])
        assert eng.counters.prewarmed > 0
        # the job itself then ran against a warm store
        assert fresh_service.counters().hits > 0

    def test_prewarm_can_be_disabled(self, fresh_service):
        eng = Engine(prewarm=False)
        assert eng.prewarm_store([]) == 0
        eng.run_jobs([benchmark_job("duplication", "wolf", num_gpus=2)])
        assert eng.counters.prewarmed == 0

    def test_prewarm_dedupes_environments(self, fresh_service):
        eng = Engine()
        specs = [benchmark_job("duplication", "wolf", num_gpus=2),
                 benchmark_job("chopin+sched", "wolf", num_gpus=2)]
        warmed = eng.prewarm_store(specs)
        trace = load_benchmark("wolf", "tiny")
        # both jobs share one environment: each draw warmed exactly once
        assert warmed == trace.num_draws


class TestDeprecations:
    def test_clear_reference_cache_warns_and_delegates(self, fresh_service):
        from repro.sfr import clear_reference_cache, reference_pass
        trace = load_benchmark("wolf", "tiny")
        reference_pass(trace, make_setup("tiny", num_gpus=4).config)
        assert any(key.startswith("reference-")
                   for key in fresh_service.store._entries)
        with pytest.warns(DeprecationWarning):
            clear_reference_cache()
        assert not any(key.startswith("reference-")
                       for key in fresh_service.store._entries)

    def test_render_path_emits_no_deprecation_warnings(self, fresh_service):
        trace = load_benchmark("wolf", "tiny")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run("duplication", trace, make_setup("tiny", num_gpus=2),
                use_cache=False)


class TestLayering:
    def test_no_scheme_drives_the_pipeline_directly(self):
        """Schemes must consume repro.render, not raster.pipeline."""
        import repro.sfr
        sfr_dir = pathlib.Path(repro.sfr.__file__).parent
        offenders = [path.name for path in sorted(sfr_dir.glob("*.py"))
                     if "GraphicsPipeline" in path.read_text()]
        assert offenders == []

    def test_pipeline_shim_matches_service_output(self, fresh_service):
        """The store-free GraphicsPipeline primitive and the service
        produce identical metrics for the same draw."""
        from repro.framebuffer.framebuffer import SurfacePool
        from repro.raster.pipeline import GraphicsPipeline
        trace = load_benchmark("wolf", "tiny")
        draw = trace.frame.draws[0]
        direct = GraphicsPipeline(trace.width, trace.height).execute_draw(
            draw, SurfacePool(trace.width, trace.height), mvp=trace.camera)
        session = render_service().session(trace)
        via_service = session.execute_draw(
            draw, SurfacePool(trace.width, trace.height))
        assert direct.triangles_rasterized == via_service.triangles_rasterized
        assert direct.fragments_shaded == via_service.fragments_shaded
        assert direct.fragments_passed == via_service.fragments_passed


class TestSpillIntegrity:
    """A damaged disk spill is a *miss with a counter*, never a crash."""

    def _spilled_store(self, tmp_path):
        store = ArtifactStore(disk_dir=str(tmp_path))
        store.put("frame-abc", {"color": list(range(64))})
        store.drop_memory()
        return store, tmp_path / "frame-abc.pkl"

    def test_bit_flip_reads_as_counted_miss(self, tmp_path):
        store, path = self._spilled_store(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip one payload byte; the sha256 frame catches it
        path.write_bytes(bytes(blob))
        value, found = store.get("frame-abc")
        assert not found and value is None
        assert store.counters.disk_corrupt == 1
        assert store.counters.disk_loads == 0
        # the quarantined file is gone, so the recompute can re-spill
        assert not path.exists()

    def test_truncation_reads_as_counted_miss(self, tmp_path):
        store, path = self._spilled_store(tmp_path)
        path.write_bytes(path.read_bytes()[:40])
        _, found = store.get("frame-abc")
        assert not found
        assert store.counters.disk_corrupt == 1

    def test_foreign_file_reads_as_counted_miss(self, tmp_path):
        store, path = self._spilled_store(tmp_path)
        path.write_bytes(b"not a spill at all")
        _, found = store.get("frame-abc")
        assert not found
        assert store.counters.disk_corrupt == 1

    def test_intact_spill_still_round_trips(self, tmp_path):
        store, _ = self._spilled_store(tmp_path)
        value, found = store.get("frame-abc")
        assert found and value == {"color": list(range(64))}
        assert store.counters.disk_corrupt == 0
        assert store.counters.disk_loads == 1

    def test_corrupt_spill_recomputes_through_cached(self, tmp_path):
        store, path = self._spilled_store(tmp_path)
        path.write_bytes(b"garbage")
        value = store.cached("frame-abc", lambda: "recomputed")
        assert value == "recomputed"
        assert store.counters.disk_corrupt == 1
        # the recompute re-spilled an intact replacement
        store.drop_memory()
        value, found = store.get("frame-abc")
        assert found and value == "recomputed"
