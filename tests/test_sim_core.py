"""Discrete-event kernel: events, timeouts, processes, combinators."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


class TestEventBasics:
    def test_event_starts_untriggered(self, sim):
        event = sim.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_carries_value(self, sim):
        event = sim.event()
        event.succeed(42)
        sim.run()
        assert event.processed
        assert event.value == 42

    def test_double_succeed_raises(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)


class TestProcesses:
    def test_timeout_advances_clock(self, sim):
        log = []

        def proc():
            yield sim.timeout(5.0)
            log.append(sim.now)
            yield sim.timeout(2.5)
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [5.0, 7.5]

    def test_processes_interleave_by_time(self, sim):
        order = []

        def proc(name, delay):
            yield sim.timeout(delay)
            order.append(name)

        sim.process(proc("late", 10))
        sim.process(proc("early", 1))
        sim.process(proc("mid", 5))
        sim.run()
        assert order == ["early", "mid", "late"]

    def test_same_time_fifo_order(self, sim):
        order = []

        def proc(name):
            yield sim.timeout(3)
            order.append(name)

        for name in "abc":
            sim.process(proc(name))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_process_return_value(self, sim):
        def proc():
            yield sim.timeout(1)
            return "done"

        p = sim.process(proc())
        sim.run()
        assert p.value == "done"

    def test_waiting_on_event_resumes_with_value(self, sim):
        event = sim.event()
        seen = []

        def waiter():
            value = yield event
            seen.append(value)

        def firer():
            yield sim.timeout(4)
            event.succeed("payload")

        sim.process(waiter())
        sim.process(firer())
        sim.run()
        assert seen == ["payload"]

    def test_waiting_on_processed_event_still_resumes(self, sim):
        event = sim.event()
        event.succeed("early")
        seen = []

        def waiter():
            yield sim.timeout(10)  # event processed long before this
            value = yield event
            seen.append((sim.now, value))

        sim.process(waiter())
        sim.run()
        assert seen == [(10.0, "early")]

    def test_yielding_non_event_raises(self, sim):
        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_process_chaining(self, sim):
        def inner():
            yield sim.timeout(3)
            return 7

        result = []

        def outer():
            value = yield sim.process(inner())
            result.append((sim.now, value))

        sim.process(outer())
        sim.run()
        assert result == [(3.0, 7)]


class TestCombinators:
    def test_all_of_waits_for_every_event(self, sim):
        times = []

        def proc():
            events = [sim.timeout(2), sim.timeout(9), sim.timeout(5)]
            yield sim.all_of(events)
            times.append(sim.now)

        sim.process(proc())
        sim.run()
        assert times == [9.0]

    def test_all_of_empty_fires_immediately(self, sim):
        fired = []

        def proc():
            yield sim.all_of([])
            fired.append(sim.now)

        sim.process(proc())
        sim.run()
        assert fired == [0.0]

    def test_any_of_fires_on_first(self, sim):
        times = []

        def proc():
            yield sim.any_of([sim.timeout(8), sim.timeout(3)])
            times.append(sim.now)

        sim.process(proc())
        sim.run()
        assert times == [3.0]


class TestRunControl:
    def test_run_until_stops_clock(self, sim):
        def proc():
            yield sim.timeout(100)

        sim.process(proc())
        now = sim.run(until=30)
        assert now == 30

    def test_step_without_events_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()

    def test_run_returns_final_time(self, sim):
        def proc():
            yield sim.timeout(17)

        sim.process(proc())
        assert sim.run() == 17.0


class TestDeadlockWatchdog:
    def test_mutual_wait_names_both_processes(self, sim):
        gate_a, gate_b = sim.event(), sim.event()

        def alice():
            yield gate_b
            gate_a.succeed()

        def bob():
            yield gate_a
            gate_b.succeed()

        sim.process(alice(), name="alice")
        sim.process(bob(), name="bob")
        with pytest.raises(SimulationError) as info:
            sim.run()
        message = str(info.value)
        assert "deadlock" in message
        assert "'alice'" in message and "'bob'" in message
        assert "2 unfinished process(es)" in message

    def test_wait_description_mentions_resource(self, sim):
        from repro.sim import Resource
        port = Resource(sim, name="egress0")
        port.request()  # hold the only unit forever

        def stuck():
            yield port.request()

        sim.process(stuck(), name="sender")
        with pytest.raises(SimulationError, match="resource 'egress0'"):
            sim.run()

    def test_watchdog_can_be_disabled(self, sim):
        def stuck():
            yield sim.event()

        sim.process(stuck(), name="stuck")
        assert sim.run(watchdog=False) == 0.0

    def test_daemon_processes_are_exempt(self, sim):
        def service():
            while True:
                yield sim.event()  # waits forever by design

        def worker():
            yield sim.timeout(5)

        sim.process(service(), name="service", daemon=True)
        sim.process(worker(), name="worker")
        assert sim.run() == 5.0

    def test_run_until_does_not_trip_the_watchdog(self, sim):
        def proc():
            yield sim.timeout(100)

        sim.process(proc())
        assert sim.run(until=30) == 30

    def test_clean_completion_passes(self, sim):
        def proc():
            yield sim.timeout(3)

        sim.process(proc())
        assert sim.run() == 3.0
        assert sim.stuck_processes() == []


class TestProcessFailureModes:
    def test_exception_is_prefixed_with_process_name(self, sim):
        def exploder():
            yield sim.timeout(1)
            raise ValueError("boom")

        sim.process(exploder(), name="gpu3-render")
        with pytest.raises(ValueError, match=r"\[process 'gpu3-render'\] boom"):
            sim.run()

    def test_kill_runs_finally_blocks(self, sim):
        cleaned = []

        def holder():
            try:
                yield sim.event()
            finally:
                cleaned.append(sim.now)

        victim = sim.process(holder(), name="victim")

        def killer():
            yield sim.timeout(7)
            victim.kill("killed")

        sim.process(killer(), name="killer")
        sim.run()
        assert cleaned == [7.0]
        assert victim.killed
        assert victim.value == "killed"

    def test_killed_process_unblocks_waiters(self, sim):
        resumed = []

        def sleeper():
            yield sim.event()

        victim = sim.process(sleeper(), name="victim")

        def waiter():
            value = yield victim
            resumed.append((sim.now, value))

        def killer():
            yield sim.timeout(4)
            victim.kill("gone")

        sim.process(waiter(), name="waiter")
        sim.process(killer(), name="killer")
        sim.run()
        assert resumed == [(4.0, "gone")]

    def test_kill_after_completion_is_a_no_op(self, sim):
        def quick():
            yield sim.timeout(1)
            return "fine"

        p = sim.process(quick(), name="quick")
        sim.run()
        p.kill()
        assert not p.killed
        assert p.value == "fine"


class TestLivelockWatchdog:
    """The configurable virtual-time budget (``watchdog_cycles``)."""

    def test_livelock_trips_typed_error(self):
        from repro.errors import WatchdogError
        sim = Simulator(watchdog_cycles=100.0)

        def spinner():
            while True:
                yield sim.timeout(10.0)

        sim.process(spinner(), name="spinner")
        with pytest.raises(WatchdogError, match="'spinner'"):
            sim.run()
        # the clock never advances past the budget
        assert sim.now <= 100.0

    def test_budget_is_per_run_not_absolute(self):
        """Each run() call gets a fresh budget from its starting time."""
        sim = Simulator(watchdog_cycles=100.0)

        def step():
            yield sim.timeout(80.0)

        sim.process(step())
        assert sim.run() == 80.0
        sim.process(step())
        assert sim.run() == 160.0  # 80 cycles into the second budget

    def test_completing_run_never_trips(self):
        sim = Simulator(watchdog_cycles=1000.0)

        def proc():
            yield sim.timeout(999.0)

        sim.process(proc())
        assert sim.run() == 999.0

    def test_watchdog_error_is_a_simulation_error(self):
        from repro.errors import WatchdogError
        assert issubclass(WatchdogError, SimulationError)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(SimulationError, match="positive"):
            Simulator(watchdog_cycles=0.0)
        with pytest.raises(SimulationError, match="positive"):
            Simulator(watchdog_cycles=-5.0)

    def test_budget_threads_through_make_setup(self):
        from repro.harness import make_setup
        setup = make_setup("tiny", num_gpus=2, watchdog_cycles=123.0)
        assert setup.config.watchdog_cycles == 123.0
        # the budget must not perturb results: it is excluded from the
        # result-cache identity
        baseline = make_setup("tiny", num_gpus=2)
        assert setup.config.link == baseline.config.link
        assert setup.config.gpu == baseline.config.gpu
