"""Discrete-event kernel: events, timeouts, processes, combinators."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


class TestEventBasics:
    def test_event_starts_untriggered(self, sim):
        event = sim.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_carries_value(self, sim):
        event = sim.event()
        event.succeed(42)
        sim.run()
        assert event.processed
        assert event.value == 42

    def test_double_succeed_raises(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)


class TestProcesses:
    def test_timeout_advances_clock(self, sim):
        log = []

        def proc():
            yield sim.timeout(5.0)
            log.append(sim.now)
            yield sim.timeout(2.5)
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [5.0, 7.5]

    def test_processes_interleave_by_time(self, sim):
        order = []

        def proc(name, delay):
            yield sim.timeout(delay)
            order.append(name)

        sim.process(proc("late", 10))
        sim.process(proc("early", 1))
        sim.process(proc("mid", 5))
        sim.run()
        assert order == ["early", "mid", "late"]

    def test_same_time_fifo_order(self, sim):
        order = []

        def proc(name):
            yield sim.timeout(3)
            order.append(name)

        for name in "abc":
            sim.process(proc(name))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_process_return_value(self, sim):
        def proc():
            yield sim.timeout(1)
            return "done"

        p = sim.process(proc())
        sim.run()
        assert p.value == "done"

    def test_waiting_on_event_resumes_with_value(self, sim):
        event = sim.event()
        seen = []

        def waiter():
            value = yield event
            seen.append(value)

        def firer():
            yield sim.timeout(4)
            event.succeed("payload")

        sim.process(waiter())
        sim.process(firer())
        sim.run()
        assert seen == ["payload"]

    def test_waiting_on_processed_event_still_resumes(self, sim):
        event = sim.event()
        event.succeed("early")
        seen = []

        def waiter():
            yield sim.timeout(10)  # event processed long before this
            value = yield event
            seen.append((sim.now, value))

        sim.process(waiter())
        sim.run()
        assert seen == [(10.0, "early")]

    def test_yielding_non_event_raises(self, sim):
        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_process_chaining(self, sim):
        def inner():
            yield sim.timeout(3)
            return 7

        result = []

        def outer():
            value = yield sim.process(inner())
            result.append((sim.now, value))

        sim.process(outer())
        sim.run()
        assert result == [(3.0, 7)]


class TestCombinators:
    def test_all_of_waits_for_every_event(self, sim):
        times = []

        def proc():
            events = [sim.timeout(2), sim.timeout(9), sim.timeout(5)]
            yield sim.all_of(events)
            times.append(sim.now)

        sim.process(proc())
        sim.run()
        assert times == [9.0]

    def test_all_of_empty_fires_immediately(self, sim):
        fired = []

        def proc():
            yield sim.all_of([])
            fired.append(sim.now)

        sim.process(proc())
        sim.run()
        assert fired == [0.0]

    def test_any_of_fires_on_first(self, sim):
        times = []

        def proc():
            yield sim.any_of([sim.timeout(8), sim.timeout(3)])
            times.append(sim.now)

        sim.process(proc())
        sim.run()
        assert times == [3.0]


class TestRunControl:
    def test_run_until_stops_clock(self, sim):
        def proc():
            yield sim.timeout(100)

        sim.process(proc())
        now = sim.run(until=30)
        assert now == 30

    def test_step_without_events_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()

    def test_run_returns_final_time(self, sim):
        def proc():
            yield sim.timeout(17)

        sim.process(proc())
        assert sim.run() == 17.0
