"""The distributed framebuffer (dfb): tile-granular async composition.

The functional core's contract, then the scheme end-to-end:

1. *opaque*: folding tiles in **any** arrival order is bit-identical to
   the whole-sub-image sequential compositor — including under depth
   ties, where both must keep the lower source index;
2. *transparent*: the per-tile accumulator folds only tree-adjacent
   layers; out-of-order arrivals and incomplete reductions raise a typed
   ``SchedulingError`` instead of silently mis-blending;
3. the tile-message planner and the tree edge tile streams account for
   exactly the pixels the whole-message model bills;
4. fail-stop repair folds dead GPUs' tiles onto survivors (union, never
   double-billed) and re-owns their framebuffer region;
5. the ``dfb`` scheme renders bit-identically to CHOPIN, with and
   without a mid-frame GPU fail-stop.
"""

import numpy as np
import pytest

from repro.composition import composite_opaque, composite_transparent
from repro.composition.compositor import SubImage
from repro.composition.dfb import (OpaqueTileReducer, TransparentTileReducer,
                                   all_tile_messages, plan_group_tiles,
                                   reduce_opaque_tiles, tree_edge_tile_sizes)
from repro.errors import CompositionError, FaultError, SchedulingError
from repro.faults import parse_fault_plan
from repro.framebuffer.depth import DEPTH_CLEAR
from repro.faults.degraded import (repair_tile_owner, repair_tile_sources,
                                   tile_owner_matrix, tile_pixel_counts)
from repro.geometry import BlendOp
from repro.harness.runner import make_setup, run
from repro.raster import TileGrid
from repro.traces import load_benchmark

WIDTH, HEIGHT, TILE = 20, 12, 4  # 5 x 3 tiles, edge-exact


@pytest.fixture()
def grid():
    return TileGrid(WIDTH, HEIGHT, tile_size=TILE)


def make_opaque_images(rng, count, tie_levels=3):
    """Sub-images with deliberately coarse depths so ties are common.

    Untouched pixels carry clear color/depth, as real sub-images do.
    """
    images = []
    for _ in range(count):
        depth = (rng.integers(0, tie_levels, (HEIGHT, WIDTH))
                 / tie_levels).astype(np.float32)
        color = rng.random((HEIGHT, WIDTH, 4), dtype=np.float32)
        touched = rng.random((HEIGHT, WIDTH)) < 0.6
        color[~touched] = 0.0
        depth[~touched] = DEPTH_CLEAR
        images.append(SubImage(color=color, depth=depth, touched=touched))
    return images


# ------------------------------------------------------------------ opaque


class TestOpaqueTileReduction:
    def test_raster_order_matches_sequential(self, grid, rng):
        images = make_opaque_images(rng, 4)
        expected = composite_opaque(images)
        got = reduce_opaque_tiles(grid, images)
        assert np.array_equal(got.color, expected.color)
        assert np.array_equal(got.depth, expected.depth)
        assert np.array_equal(got.touched, expected.touched)

    @pytest.mark.parametrize("seed", range(8))
    def test_any_permutation_is_bit_identical(self, grid, rng, seed):
        images = make_opaque_images(rng, 5)
        expected = composite_opaque(images)
        messages = all_tile_messages(grid, images)
        order = [messages[i]
                 for i in np.random.default_rng(seed).permutation(
                     len(messages))]
        got = reduce_opaque_tiles(grid, images, order=order)
        assert np.array_equal(got.color, expected.color)
        assert np.array_equal(got.depth, expected.depth)

    def test_depth_ties_keep_lower_source(self, grid):
        """Both compositors must break exact depth ties the same way."""
        flat = [SubImage(color=np.full((HEIGHT, WIDTH, 4), c, np.float32),
                         depth=np.full((HEIGHT, WIDTH), 0.5, np.float32),
                         touched=np.ones((HEIGHT, WIDTH), dtype=bool))
                for c in (0.25, 0.75)]
        expected = composite_opaque(flat)
        # deliver the *higher* source first: the tie must still resolve
        # toward source 0
        order = [m for m in all_tile_messages(grid, flat) if m[0] == 1] \
            + [m for m in all_tile_messages(grid, flat) if m[0] == 0]
        got = reduce_opaque_tiles(grid, flat, order=order)
        assert np.array_equal(got.color, expected.color)
        assert float(got.color[0, 0, 0]) == 0.25

    def test_reducer_rejects_unknown_source(self, grid, rng):
        images = make_opaque_images(rng, 2)
        reducer = OpaqueTileReducer(grid, 2)
        with pytest.raises(CompositionError):
            reducer.accept_subimage_tile(5, 0, 0, images[0])

    def test_zero_sources_rejected(self, grid):
        with pytest.raises(CompositionError):
            reduce_opaque_tiles(grid, [])


# -------------------------------------------------------------- transparent


def make_layer_images(grid, rng, layer_tiles):
    """Full-screen layers that are identity outside their touched tiles."""
    images = []
    for bitmap in layer_tiles:
        image = SubImage.blank(WIDTH, HEIGHT)
        for ty in range(grid.tiles_y):
            for tx in range(grid.tiles_x):
                if not bitmap[ty, tx]:
                    continue
                x0, y0, x1, y1 = grid.tile_bounds(tx, ty)
                image.color[y0:y1, x0:x1] = rng.random(
                    (y1 - y0, x1 - x0, 4), dtype=np.float32)
                image.depth[y0:y1, x0:x1] = rng.random(
                    (y1 - y0, x1 - x0), dtype=np.float32)
                image.touched[y0:y1, x0:x1] = True
        images.append(image)
    return images


def make_layer_tiles(grid, rng, count):
    tiles = rng.random((count, grid.tiles_y, grid.tiles_x)) < 0.7
    tiles[:, 0, 0] = True  # tile (0, 0) has every layer as a contributor
    return list(tiles)


def fold_all(reducer, grid, images, layer_tiles, reverse=False):
    for ty in range(grid.tiles_y):
        for tx in range(grid.tiles_x):
            layers = [k for k in range(len(images)) if layer_tiles[k][ty, tx]]
            for layer in (reversed(layers) if reverse else layers):
                reducer.accept_subimage_tile(layer, tx, ty, images[layer])


class TestTransparentTileReduction:
    def test_in_order_fold_matches_sequential(self, grid, rng):
        layer_tiles = make_layer_tiles(grid, rng, 4)
        images = make_layer_images(grid, rng, layer_tiles)
        expected = composite_transparent(images, BlendOp.OVER)
        reducer = TransparentTileReducer(grid, layer_tiles, BlendOp.OVER)
        fold_all(reducer, grid, images, layer_tiles)
        assert reducer.complete()
        got = reducer.result()
        assert np.array_equal(got.color, expected.color)
        assert np.array_equal(got.depth, expected.depth)

    def test_reverse_adjacent_fold_matches_sequential(self, grid, rng):
        """Growing the span from the back is still adjacent — same image
        up to float re-association (blend is associative in exact math
        only, like the tree compositor)."""
        layer_tiles = make_layer_tiles(grid, rng, 4)
        images = make_layer_images(grid, rng, layer_tiles)
        expected = composite_transparent(images, BlendOp.OVER)
        reducer = TransparentTileReducer(grid, layer_tiles, BlendOp.OVER)
        fold_all(reducer, grid, images, layer_tiles, reverse=True)
        got = reducer.result()
        assert np.allclose(got.color, expected.color, atol=1e-5)

    def test_out_of_order_tile_raises(self, grid, rng):
        layer_tiles = [np.ones((grid.tiles_y, grid.tiles_x), dtype=bool)
                       for _ in range(3)]
        images = make_layer_images(grid, rng, layer_tiles)
        reducer = TransparentTileReducer(grid, layer_tiles, BlendOp.OVER)
        reducer.accept_subimage_tile(0, 0, 0, images[0])
        with pytest.raises(SchedulingError, match="out-of-order"):
            reducer.accept_subimage_tile(2, 0, 0, images[2])

    def test_adjacency_judged_among_contributors_only(self, grid, rng):
        """A layer skipping the tile is no gap: 0 then 2 is adjacent when
        layer 1 never touches the tile."""
        layer_tiles = [np.ones((grid.tiles_y, grid.tiles_x), dtype=bool),
                       np.zeros((grid.tiles_y, grid.tiles_x), dtype=bool),
                       np.ones((grid.tiles_y, grid.tiles_x), dtype=bool)]
        images = make_layer_images(grid, rng, layer_tiles)
        reducer = TransparentTileReducer(grid, layer_tiles, BlendOp.OVER)
        reducer.accept_subimage_tile(0, 0, 0, images[0])
        reducer.accept_subimage_tile(2, 0, 0, images[2])  # must not raise

    def test_non_contributor_rejected(self, grid, rng):
        layer_tiles = [np.zeros((grid.tiles_y, grid.tiles_x), dtype=bool)
                       for _ in range(2)]
        layer_tiles[0][:, :] = True
        images = make_layer_images(grid, rng, layer_tiles)
        reducer = TransparentTileReducer(grid, layer_tiles, BlendOp.OVER)
        with pytest.raises(SchedulingError, match="does not touch"):
            reducer.accept_subimage_tile(1, 0, 0, images[1])

    def test_incomplete_result_raises(self, grid, rng):
        layer_tiles = make_layer_tiles(grid, rng, 3)
        images = make_layer_images(grid, rng, layer_tiles)
        reducer = TransparentTileReducer(grid, layer_tiles, BlendOp.OVER)
        reducer.accept_subimage_tile(0, 0, 0, images[0])
        assert not reducer.complete()
        with pytest.raises(SchedulingError, match="incomplete"):
            reducer.result()


# ----------------------------------------------------------- tile planning


class TestTileMessagePlanning:
    def test_plan_counts_are_consistent(self, grid, rng):
        n = 3
        pixels = tile_pixel_counts(grid)
        owner = tile_owner_matrix(grid, n)
        touched = [rng.random((grid.tiles_y, grid.tiles_x)) < 0.5
                   for _ in range(n)]
        sends, recv_counts = plan_group_tiles(touched, pixels, owner)
        assert sum(len(s) for s in sends) == sum(recv_counts)
        for src, messages in enumerate(sends):
            for m in messages:
                assert m.src == src
                assert m.dst != src  # self-owned tiles never travel
                assert m.dst == int(owner[m.ty, m.tx])
                assert m.pixels == int(pixels[m.ty, m.tx])
                assert touched[src][m.ty, m.tx]
        for dst in range(n):
            assert recv_counts[dst] == sum(
                1 for s in sends for m in s if m.dst == dst)

    def test_planned_tiles_cover_foreign_touched_tiles_exactly_once(
            self, grid, rng):
        n = 4
        pixels = tile_pixel_counts(grid)
        owner = tile_owner_matrix(grid, n)
        touched = [rng.random((grid.tiles_y, grid.tiles_x)) < 0.5
                   for _ in range(n)]
        sends, _ = plan_group_tiles(touched, pixels, owner)
        for src in range(n):
            expected = {(tx, ty)
                        for ty in range(grid.tiles_y)
                        for tx in range(grid.tiles_x)
                        if touched[src][ty, tx]
                        and int(owner[ty, tx]) != src}
            got = [(m.tx, m.ty) for m in sends[src]]
            assert len(got) == len(set(got))
            assert set(got) == expected

    def test_tree_edge_streams_sum_to_edge_pixels(self, grid, rng):
        pixels = tile_pixel_counts(grid)
        leaves = {m: rng.random((grid.tiles_y, grid.tiles_x)) < 0.6
                  for m in (0, 1, 2, 3)}
        # adjacent-pair tree: (1->0), (3->2) then (2->0); each edge is
        # billed the sender's current union of touched tiles
        def bill(bitmap):
            return int(pixels[bitmap].sum())
        levels = [[(1, 0, bill(leaves[1])), (3, 2, bill(leaves[3]))],
                  [(2, 0, bill(leaves[2] | leaves[3]))]]
        streams = tree_edge_tile_sizes(levels, leaves, pixels)
        for level, level_streams in zip(levels, streams):
            for (sender, receiver, billed), stream in zip(level,
                                                          level_streams):
                assert sum(stream) == billed
        # the second-level sender streams its merged bitmap
        assert sum(streams[1][0]) == bill(leaves[2] | leaves[3])


# --------------------------------------------------------- fail-stop repair


class TestTileRepair:
    def test_repair_tile_sources_unions_onto_inheritor(self, grid, rng):
        touched = [rng.random((grid.tiles_y, grid.tiles_x)) < 0.5
                   for _ in range(4)]
        merged = repair_tile_sources(touched, dead=[2], inherit={2: 0})
        assert np.array_equal(merged[0], touched[0] | touched[2])
        assert not merged[2].any()
        assert np.array_equal(merged[1], touched[1])
        assert np.array_equal(merged[3], touched[3])
        # union, not sum: the originals are untouched
        assert touched[0] is not merged[0]

    def test_repair_tile_sources_rejects_self_inherit(self, grid, rng):
        touched = [np.ones((grid.tiles_y, grid.tiles_x), dtype=bool)
                   for _ in range(2)]
        with pytest.raises(FaultError):
            repair_tile_sources(touched, dead=[1], inherit={1: 1})

    def test_repair_tile_owner_reowns_dead_tiles(self, grid):
        owner = tile_owner_matrix(grid, 4)
        repaired = repair_tile_owner(owner, dead=[1], inherit={1: 3})
        assert not (repaired == 1).any()
        assert np.array_equal(repaired == 3, (owner == 3) | (owner == 1))
        assert np.array_equal(repaired == 0, owner == 0)

    def test_repair_tile_owner_rejects_dead_adopter(self, grid):
        owner = tile_owner_matrix(grid, 4)
        with pytest.raises(FaultError):
            repair_tile_owner(owner, dead=[1, 2], inherit={1: 2, 2: 3})
        with pytest.raises(FaultError):
            repair_tile_owner(owner, dead=[1], inherit={1: 1})


# ----------------------------------------------------------- scheme e2e


class TestDfbSchemeEndToEnd:
    @pytest.fixture(scope="class")
    def setup(self):
        return make_setup("tiny", num_gpus=8)

    @pytest.fixture(scope="class")
    def dfb_result(self, setup):
        return run("dfb", load_benchmark("wolf", "tiny"), setup)

    def test_bit_identical_to_chopin(self, setup, dfb_result):
        baseline = run("chopin", load_benchmark("wolf", "tiny"), setup)
        assert np.array_equal(dfb_result.image.color, baseline.image.color)
        assert np.array_equal(dfb_result.image.depth, baseline.image.depth)

    def test_tile_streaming_pays_composition_traffic(self, dfb_result):
        from repro.stats import TRAFFIC_COMPOSITION
        assert dfb_result.stats.traffic_total(TRAFFIC_COMPOSITION) > 0

    def test_failstop_recovers_bit_identically(self, setup, dfb_result):
        faulted = make_setup("tiny", num_gpus=8,
                             faults=parse_fault_plan("fail=2@50000"))
        result = run("dfb", load_benchmark("wolf", "tiny"), faulted)
        assert np.array_equal(result.image.color, dfb_result.image.color)
        assert np.array_equal(result.image.depth, dfb_result.image.depth)
        assert result.stats.recovery_cycles > 0
        assert result.frame_cycles > dfb_result.frame_cycles
