"""Deep analysis tests: flow engine, units checker, taint pass, baseline.

The meta-tests at the bottom are the teeth: they copy ``src/repro`` into a
temp tree, seed it with exactly the bug class each pass exists to catch
(a bytes-vs-cycles mix-up in ``CostModel``, a set-iteration order leak
into event scheduling), and require the deep lint to find it — while the
unmutated tree stays at zero findings.
"""

import json
import pathlib
import shutil
import textwrap

import pytest

from repro.analysis import (filter_baselined, lint_project, lint_paths,
                            load_baseline, save_baseline)
from repro.analysis.flow import Project, module_name_for
from repro.analysis.simlint import Finding, LintModule
from repro.analysis.taint import TaintChecker
from repro.analysis.units import (ANY, UNKNOWN, UnitChecker, format_unit,
                                  mul_units, parse_unit, unit_from_name)
from repro.cli import main

REPO_SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def project_of(*named_sources):
    """Project from ``(module_name, source)`` pairs."""
    return Project.from_modules(
        (name, False, LintModule(f"{name}.py", textwrap.dedent(src)))
        for name, src in named_sources)


def unit_findings(*named_sources):
    return UnitChecker(project_of(*named_sources)).run()


def taint_findings(*named_sources):
    return TaintChecker(project_of(*named_sources)).run()


# ------------------------------------------------------------- flow engine


class TestFlowEngine:
    def test_module_name_walks_packages(self):
        name, is_package = module_name_for(REPO_SRC / "timing" / "costs.py")
        assert name == "repro.timing.costs"
        assert not is_package
        name, is_package = module_name_for(REPO_SRC / "sim" / "__init__.py")
        assert name == "repro.sim"
        assert is_package

    def test_indexes_src_repro(self):
        project = Project.from_paths([REPO_SRC])
        assert "repro.timing.costs" in project.modules
        assert "repro.timing.costs.CostModel" in project.classes
        assert ("repro.timing.costs.CostModel.dram_bytes_per_cycle"
                in project.functions)

    def test_resolves_reexports(self):
        project = Project.from_paths([REPO_SRC])
        # `from ..sim import Simulator` chases through sim/__init__.py
        cls = project.lookup_class("repro.sim.Simulator")
        assert cls is not None
        assert cls.qualname == "repro.sim.core.Simulator"

    def test_attr_chain_typing(self):
        project = Project.from_paths([REPO_SRC])
        cost_model = project.classes["repro.timing.costs.CostModel"]
        gpu = project.attr_class(cost_model, "gpu")
        assert gpu is not None
        assert gpu.qualname == "repro.config.GPUConfig"

    def test_call_graph_has_interprocedural_edge(self):
        project = Project.from_paths([REPO_SRC])
        graph = project.call_graph()
        base = "repro.timing.costs.CostModel"
        assert f"{base}.dram_bytes_per_cycle" \
            in graph[f"{base}.fragment_memory_cycles"]


# ----------------------------------------------------------- unit algebra


class TestUnitAlgebra:
    def test_parse_and_format(self):
        assert format_unit(parse_unit("bytes/cycle")) == "byte/cycle"
        assert format_unit(parse_unit("cycles*bytes")) == "byte*cycle"
        assert parse_unit("hertz") == parse_unit("cycles/s")
        assert parse_unit("1") == ()

    def test_mul_div_combine(self):
        bandwidth = parse_unit("bytes/s")
        clock = parse_unit("hertz")
        assert mul_units(bandwidth, clock, invert_b=True) \
            == parse_unit("bytes/cycle")

    def test_scalars_are_transparent(self):
        cycles = parse_unit("cycles")
        assert mul_units(cycles, ANY) == cycles
        assert mul_units(ANY, cycles) == cycles
        assert mul_units(ANY, ANY) is ANY
        # a constant divided by a unit inverts it
        assert mul_units(ANY, cycles, invert_b=True) \
            == parse_unit("1/cycle")

    def test_name_conventions(self):
        assert unit_from_name("frame_cycles") == parse_unit("cycles")
        assert unit_from_name("dram_bandwidth_bytes_per_s") \
            == parse_unit("bytes/s")
        assert unit_from_name("pixel_bytes") == parse_unit("bytes/pixel")
        assert unit_from_name("whatever") is UNKNOWN


class TestUnitChecker:
    def test_flags_add_of_mismatched_units(self):
        findings = unit_findings(("m", """\
            def total(num_bytes, latency_cycles):
                return num_bytes + latency_cycles
        """))
        assert [f.rule for f in findings] == ["unit-mismatch"]
        assert "byte" in findings[0].message
        assert "cycle" in findings[0].message

    def test_mul_div_is_fine_and_tracked(self):
        assert unit_findings(("m", """\
            def occupancy_cycles(num_bytes, link_bytes_per_cycle):
                return num_bytes / link_bytes_per_cycle
        """)) == []

    def test_flags_inverted_division_via_declared_return(self):
        findings = unit_findings(("m", """\
            def transfer_bytes_per_cycle(link_bytes_per_s, frequency_hz):
                return link_bytes_per_s * frequency_hz
        """))
        assert [f.rule for f in findings] == ["unit-return"]

    def test_interprocedural_return_units(self):
        findings = unit_findings(("m", """\
            def rate(num_bytes, num_cycles):
                return num_bytes / num_cycles

            def wrong(num_bytes, num_cycles):
                return num_bytes + rate(num_bytes, num_cycles)
        """))
        assert [f.rule for f in findings] == ["unit-mismatch"]
        assert findings[0].line == 5

    def test_checks_argument_units(self):
        findings = unit_findings(("m", """\
            def send(num_bytes):
                return num_bytes

            def caller(frame_cycles):
                return send(frame_cycles)
        """))
        assert [f.rule for f in findings] == ["unit-arg"]

    def test_unit_comment_casts(self):
        assert unit_findings(("m", """\
            def budget(num_draws):
                total = 2 * num_draws  # unit: triangles
                return total + count_triangles()

            def count_triangles():
                return 7
        """)) == []

    def test_unknown_units_stay_silent(self):
        assert unit_findings(("m", """\
            def blend(alpha, beta):
                return alpha + beta
        """)) == []

    def test_max_requires_matching_units(self):
        findings = unit_findings(("m", """\
            def roofline(num_bytes, num_cycles):
                return max(num_bytes, num_cycles)
        """))
        assert [f.rule for f in findings] == ["unit-mismatch"]

    def test_suppression_marker_applies(self, tmp_path):
        src = tmp_path / "m.py"
        src.write_text(textwrap.dedent("""\
            def total(num_bytes, num_cycles):
                return num_bytes + num_cycles  # simlint: disable=unit-mismatch
        """))
        assert lint_project([src]) == []
        # without the marker the same code is flagged
        src.write_text(src.read_text().split("#")[0] + "\n")
        assert [f.rule for f in lint_project([src])] == ["unit-mismatch"]


# -------------------------------------------------------------- taint pass


class TestTaintChecker:
    def test_cross_function_set_order_into_scheduling(self):
        findings = taint_findings(("m", """\
            def pending_order(seen):
                ready = set(seen)
                return list(ready)

            def schedule_all(sim, seen):
                for delay in pending_order(seen):
                    yield sim.timeout(delay)
        """))
        assert [f.rule for f in findings] == ["nondet-taint"]
        assert "set iteration order" in findings[0].message
        assert "sim.timeout" in findings[0].message

    def test_id_into_fingerprint(self):
        findings = taint_findings(("m", """\
            def key_of(trace):
                return id(trace)

            def job_for(trace):
                return JobSpec(key_of(trace))
        """))
        assert [f.rule for f in findings] == ["nondet-taint"]
        assert "id()" in findings[0].message

    def test_listdir_into_rng_seed(self):
        findings = taint_findings(("m", """\
            import os
            import random

            def seeded(path):
                names = os.listdir(path)
                return random.Random(names[0])
        """))
        assert len(findings) == 1
        assert "filesystem listing order" in findings[0].message

    def test_sorted_sanitizes(self):
        assert taint_findings(("m", """\
            def schedule_all(sim, seen):
                for delay in sorted(set(seen)):
                    yield sim.timeout(delay)
        """)) == []

    def test_set_typed_attribute_iteration(self):
        findings = taint_findings(("m", """\
            from typing import Set

            class Pool:
                pending: Set[int]

                def drain(self, sim):
                    for item in self.pending:
                        yield sim.timeout(item)
        """))
        assert [f.rule for f in findings] == ["nondet-taint"]

    def test_set_order_into_store_key(self):
        # the artifact store's content addresses must never depend on
        # iteration order (see repro.render.store.store_key)
        findings = taint_findings(("m", """\
            def draw_tags(draws):
                tags = set(draws)
                return list(tags)

            def address(draws):
                return store_key("geometry", {"draws": draw_tags(draws)})
        """))
        assert [f.rule for f in findings] == ["nondet-taint"]
        assert "store key" in findings[0].message
        assert "set iteration order" in findings[0].message

    def test_hash_into_store_key(self):
        findings = taint_findings(("m", """\
            def address(draw):
                return store_key("geometry", {"draw": hash(draw)})
        """))
        assert [f.rule for f in findings] == ["nondet-taint"]
        assert "store key" in findings[0].message

    def test_sorted_fields_into_store_key_are_clean(self):
        # the real store's idiom: deterministic fields, sorted iteration
        assert taint_findings(("m", """\
            def address(draws):
                tags = sorted(set(draws))
                return store_key("geometry", {"draws": tags})
        """)) == []

    def test_id_as_cache_key_is_not_a_sink(self):
        # the id(trace) memo-key idiom used by the harness stays legal
        assert taint_findings(("m", """\
            def lookup(cache, trace):
                return cache.get(id(trace))
        """)) == []


# ---------------------------------------------------------------- baseline


class TestBaseline:
    def make(self, path, rule="unit-mismatch", message="msg", line=3):
        return Finding(path=path, line=line, col=0, rule=rule,
                       message=message)

    def test_roundtrip_and_line_drift(self, tmp_path):
        baseline_file = tmp_path / "baseline.json"
        finding = self.make("src/x.py", line=3)
        assert save_baseline(baseline_file, [finding]) == 1
        keys = load_baseline(baseline_file)
        drifted = self.make("src/x.py", line=99)
        new, suppressed = filter_baselined([drifted], keys)
        assert new == [] and suppressed == 1
        other = self.make("src/x.py", message="different")
        new, suppressed = filter_baselined([other], keys)
        assert new == [other] and suppressed == 0

    def test_malformed_baseline_is_config_error(self, tmp_path):
        from repro.errors import ConfigError
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigError):
            load_baseline(bad)
        bad.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ConfigError):
            load_baseline(bad)


# ----------------------------------------------- meta: src/repro must pass


def _copy_src_repro(tmp_path):
    tree = tmp_path / "repro"
    shutil.copytree(REPO_SRC, tree)
    return tree


class TestDeepLintMeta:
    def test_src_repro_is_deep_clean(self):
        findings = lint_paths([REPO_SRC], deep=True)
        assert findings == []

    def test_units_catch_seeded_bytes_vs_cycles_mutation(self, tmp_path):
        tree = _copy_src_repro(tmp_path)
        costs = tree / "timing" / "costs.py"
        source = costs.read_text()
        mutated = source.replace(
            "return miss_bytes / self.dram_bytes_per_cycle()",
            "return miss_bytes + self.dram_bytes_per_cycle()")
        assert mutated != source
        costs.write_text(mutated)
        findings = [f for f in lint_paths([tree], deep=True)
                    if f.rule.startswith("unit")]
        assert any(f.rule == "unit-mismatch"
                   and "costs.py" in f.path for f in findings)

    def test_units_catch_seeded_inverted_division(self, tmp_path):
        tree = _copy_src_repro(tmp_path)
        costs = tree / "timing" / "costs.py"
        source = costs.read_text()
        mutated = source.replace("/ self.gpu.frequency_hz",
                                 "* self.gpu.frequency_hz")
        assert mutated != source
        costs.write_text(mutated)
        findings = lint_paths([tree], deep=True)
        assert any(f.rule == "unit-return" and "costs.py" in f.path
                   for f in findings)

    def test_taint_catches_seeded_set_leak_into_scheduling(self, tmp_path):
        tree = _copy_src_repro(tmp_path)
        chopin = tree / "sfr" / "chopin.py"
        chopin.write_text(chopin.read_text() + textwrap.dedent("""\


            def _pending_order(pending):
                ready = set(pending)
                return list(ready)


            def _leak_schedule(sim, pending):
                for delay in _pending_order(pending):
                    yield sim.timeout(delay)
        """))
        findings = lint_paths([tree], deep=True)
        taint = [f for f in findings if f.rule == "nondet-taint"]
        assert any("chopin.py" in f.path
                   and "set iteration order" in f.message for f in taint)


# -------------------------------------------------------------- deep CLI


class TestDeepCLI:
    def _leaky_tree(self, tmp_path):
        src = tmp_path / "proj"
        src.mkdir()
        (src / "leak.py").write_text(textwrap.dedent("""\
            def order(seen):
                return list(set(seen))

            def schedule(sim, seen):
                for delay in order(seen):
                    yield sim.timeout(delay)
        """))
        return src

    def test_deep_flag_finds_cross_function_leak(self, tmp_path, capsys):
        src = self._leaky_tree(tmp_path)
        assert main(["lint", str(src)]) == 1  # unordered-iter on list(set)
        capsys.readouterr()
        assert main(["lint", "--deep", str(src)]) == 1
        out = capsys.readouterr().out
        assert "nondet-taint" in out

    def test_fail_on_error_ignores_warnings(self, tmp_path, capsys):
        src = tmp_path / "warn.py"
        # mutable-default and broad-except are warnings
        src.write_text("def f(x=[]):\n    return x\n")
        assert main(["lint", str(src)]) == 1
        capsys.readouterr()
        assert main(["lint", "--fail-on", "error", str(src)]) == 0
        capsys.readouterr()
        assert main(["lint", "--fail-on", "never", str(src)]) == 0

    def test_baseline_workflow(self, tmp_path, capsys):
        src = self._leaky_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["lint", "--deep", "--update-baseline", str(baseline),
                     str(src)]) == 0
        capsys.readouterr()
        assert main(["lint", "--deep", "--baseline", str(baseline),
                     str(src)]) == 0
        out = capsys.readouterr().out
        assert "suppressed" in out
        # a new finding is not covered by the old baseline
        (src / "extra.py").write_text(
            "import random\nx = random.random()\n")
        assert main(["lint", "--deep", "--baseline", str(baseline),
                     str(src)]) == 1
        out = capsys.readouterr().out
        assert "unseeded-rng" in out

    def test_json_output_carries_severity(self, tmp_path, capsys):
        src = tmp_path / "warn.py"
        src.write_text("def f(x=[]):\n    return x\n")
        assert main(["lint", "--format", "json", str(src)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"][0]["severity"] == "warning"
