"""Frustum culling and near-plane clipping."""

import numpy as np

from repro.geometry.clipping import (backface_cull_mask, clip_near_plane,
                                     frustum_cull_mask)


def tri_clip(vertices):
    """Build a (1, 3, 4) clip-space triangle."""
    return np.array([vertices], dtype=np.float32)


def uniform_colors():
    return np.ones((1, 3, 4), dtype=np.float32)


class TestFrustumCull:
    def test_inside_triangle_kept(self):
        clip = tri_clip([[0, 0, 0.5, 1], [0.5, 0, 0.5, 1], [0, 0.5, 0.5, 1]])
        assert not frustum_cull_mask(clip)[0]

    def test_fully_left_culled(self):
        clip = tri_clip([[-2, 0, 0.5, 1], [-3, 0, 0.5, 1], [-2, 1, 0.5, 1]])
        assert frustum_cull_mask(clip)[0]

    def test_straddling_kept(self):
        clip = tri_clip([[-2, 0, 0.5, 1], [0.5, 0, 0.5, 1], [0, 0.5, 0.5, 1]])
        assert not frustum_cull_mask(clip)[0]

    def test_behind_far_plane_culled(self):
        clip = tri_clip([[0, 0, 2.0, 1], [0.5, 0, 2.0, 1], [0, 0.5, 1.5, 1]])
        assert frustum_cull_mask(clip)[0]

    def test_each_vertex_outside_different_plane_kept(self):
        # Conservative test must keep triangles spanning multiple planes.
        clip = tri_clip([[-2, 0, 0.5, 1], [2, 0, 0.5, 1], [0, 2, 0.5, 1]])
        assert not frustum_cull_mask(clip)[0]


class TestBackfaceCull:
    def test_ccw_front_facing_kept(self):
        # Counter-clockwise in NDC (y up).
        clip = tri_clip([[0, 0, 0.5, 1], [1, 0, 0.5, 1], [0, 1, 0.5, 1]])
        assert not backface_cull_mask(clip)[0]

    def test_cw_back_facing_culled(self):
        clip = tri_clip([[0, 0, 0.5, 1], [0, 1, 0.5, 1], [1, 0, 0.5, 1]])
        assert backface_cull_mask(clip)[0]

    def test_near_plane_vertices_conservatively_kept(self):
        clip = tri_clip([[0, 0, 0.5, 0.0], [0, 1, 0.5, 1], [1, 0, 0.5, 1]])
        assert not backface_cull_mask(clip)[0]


class TestNearClip:
    def test_fully_in_front_unchanged(self):
        clip = tri_clip([[0, 0, 0.5, 1], [1, 0, 0.5, 1], [0, 1, 0.5, 1]])
        out_clip, out_colors = clip_near_plane(clip, uniform_colors())
        assert out_clip.shape == (1, 3, 4)
        assert np.allclose(out_clip, clip)

    def test_fully_behind_dropped(self):
        clip = tri_clip([[0, 0, -1, 1], [1, 0, -2, 1], [0, 1, -1, 1]])
        out_clip, _ = clip_near_plane(clip, uniform_colors())
        assert out_clip.shape[0] == 0

    def test_one_vertex_behind_gives_two_triangles(self):
        clip = tri_clip([[0, 0, -1, 1], [1, 0, 1, 1], [0, 1, 1, 1]])
        out_clip, out_colors = clip_near_plane(clip, uniform_colors())
        assert out_clip.shape[0] == 2
        assert out_colors.shape[0] == 2
        # every output vertex is on or in front of the near plane
        assert (out_clip[..., 2] >= -1e-6).all()

    def test_two_vertices_behind_gives_one_triangle(self):
        clip = tri_clip([[0, 0, 1, 1], [1, 0, -1, 1], [0, 1, -1, 1]])
        out_clip, _ = clip_near_plane(clip, uniform_colors())
        assert out_clip.shape[0] == 1
        assert (out_clip[..., 2] >= -1e-6).all()

    def test_intersection_interpolates_attributes(self):
        clip = tri_clip([[0, 0, -1, 1], [0, 0, 1, 1], [1, 0, 1, 1]])
        colors = np.array([[[1, 0, 0, 1], [0, 1, 0, 1], [0, 0, 1, 1]]],
                          dtype=np.float32)
        out_clip, out_colors = clip_near_plane(clip, colors)
        # the edge v0->v1 crosses z=0 at its midpoint: colour (0.5, 0.5, 0)
        flat = out_colors.reshape(-1, 4)
        mids = [c for c in flat if np.allclose(c[:2], [0.5, 0.5], atol=1e-5)]
        assert mids, "expected an interpolated midpoint colour"

    def test_mixed_batch_preserves_front_triangles(self):
        front = [[0, 0, 0.5, 1], [1, 0, 0.5, 1], [0, 1, 0.5, 1]]
        behind = [[0, 0, -1, 1], [1, 0, -2, 1], [0, 1, -1, 1]]
        clip = np.array([front, behind], dtype=np.float32)
        colors = np.ones((2, 3, 4), dtype=np.float32)
        out_clip, _ = clip_near_plane(clip, colors)
        assert out_clip.shape[0] == 1
