"""MTTF failure traces, topology fingerprints, ring/switch fabrics, soak.

Covers the trace generator's determinism contract (generate -> save ->
load -> regenerate is byte-identical for the same seed), fingerprint
refusal with the offending fields named, per-frame FaultPlan projection
with fail-stop carry-over, the ring/switch interconnect models, and the
multi-frame soak runner's bit-identity gate.
"""

import numpy as np
import pytest

from repro.cli import EXIT_CONFIG, EXIT_FINGERPRINT, EXIT_OK, main
from repro.config import LinkConfig, SystemConfig
from repro.errors import ConfigError, TraceFingerprintError
from repro.faults.traces import (EVENT_GPU_FAIL, EVENT_GPU_REPAIR,
                                 FailureTrace, TraceEvent, TraceGenConfig,
                                 generate_trace, load_failure_trace,
                                 plan_for_window, save_failure_trace,
                                 validate_trace)
from repro.harness.engine import run_soak
from repro.harness.runner import make_setup, run_benchmark_direct
from repro.timing.topology import (directed_links, fingerprint_fields,
                                   ring_hops, topology_fingerprint,
                                   transfer_links)

GEN = TraceGenConfig(seed=11, frames=5, frame_cycles=100_000.0,
                     link_mttf_cycles=400_000.0, link_mttr_cycles=50_000.0,
                     degrade_mttf_cycles=300_000.0,
                     degrade_mttr_cycles=100_000.0,
                     gpu_mttf_cycles=2_000_000.0, gpu_mttr_cycles=500_000.0)


def _config(topology="p2p", num_gpus=8):
    return SystemConfig(num_gpus=num_gpus,
                        link=LinkConfig(topology=topology))


class TestTopologyDescriptors:
    def test_directed_link_counts(self):
        n = 8
        assert len(directed_links(_config("p2p", n))) == n * (n - 1)
        assert directed_links(_config("bus", n)) == ("bus",)
        assert len(directed_links(_config("ring", n))) == 2 * n
        assert len(directed_links(_config("switch", n))) == 2 * n

    def test_ring_routing_takes_shorter_direction(self):
        assert ring_hops(0, 2, 8) == [(0, 1), (1, 2)]
        assert ring_hops(0, 6, 8) == [(0, 7), (7, 6)]
        assert ring_hops(3, 3, 8) == []
        # antipodal tie goes clockwise, deterministically
        assert ring_hops(0, 4, 8)[0] == (0, 1)

    def test_transfer_links_cross_real_links(self):
        config = _config("switch")
        assert transfer_links(config, 2, 5) == ("up2", "down5")
        ring = _config("ring")
        for link in transfer_links(ring, 1, 3):
            assert link in directed_links(ring)

    def test_fingerprint_distinguishes_fabrics(self):
        prints = {topology_fingerprint(_config(kind))
                  for kind in ("p2p", "bus", "ring", "switch")}
        assert len(prints) == 4
        assert topology_fingerprint(_config("p2p", 8)) != \
            topology_fingerprint(_config("p2p", 16))

    def test_fingerprint_stable_across_calls(self):
        config = _config("switch")
        assert topology_fingerprint(config) == topology_fingerprint(config)
        assert len(topology_fingerprint(config)) == 16


class TestTraceGeneration:
    def test_same_seed_regenerates_identically(self):
        config = _config()
        assert generate_trace(config, GEN) == generate_trace(config, GEN)

    def test_different_seed_differs(self):
        config = _config()
        other = TraceGenConfig(seed=GEN.seed + 1, frames=GEN.frames,
                               frame_cycles=GEN.frame_cycles)
        assert generate_trace(config, GEN).events != \
            generate_trace(config, other).events

    def test_events_sorted_and_bounded(self):
        trace = generate_trace(_config(), GEN)
        times = [e.time for e in trace.events]
        assert times == sorted(times)
        assert all(0 <= t < GEN.horizon_cycles for t in times)

    def test_events_address_real_elements(self):
        config = _config("ring")
        links = set(directed_links(config))
        gpus = {f"gpu{g}" for g in range(config.num_gpus)}
        trace = generate_trace(config, GEN)
        assert trace.events  # the parameters above must produce episodes
        for event in trace.events:
            assert event.element in links | gpus

    def test_disabled_processes_draw_nothing(self):
        quiet = TraceGenConfig(seed=3, frames=2, link_mttf_cycles=None,
                               degrade_mttf_cycles=None,
                               gpu_mttf_cycles=None)
        assert generate_trace(_config(), quiet).events == ()

    def test_round_trip_is_byte_identical(self, tmp_path):
        config = _config("switch", 16)
        trace = generate_trace(config, GEN)
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        save_failure_trace(trace, first)
        loaded = load_failure_trace(first)
        assert loaded == trace
        save_failure_trace(loaded, second)
        assert first.read_bytes() == second.read_bytes()
        # regeneration from the same seed serializes identically too
        save_failure_trace(generate_trace(config, GEN), second)
        assert first.read_bytes() == second.read_bytes()

    def test_rejects_malformed_files(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_failure_trace(path)
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ConfigError, match="not a failure trace"):
            load_failure_trace(path)
        with pytest.raises(ConfigError, match="not found"):
            load_failure_trace(tmp_path / "missing.json")

    def test_event_validation(self):
        with pytest.raises(ConfigError, match="unknown trace event"):
            TraceEvent(time=0.0, element="gpu0", event="melted",
                       severity=0.0)
        with pytest.raises(ConfigError, match="negative"):
            TraceEvent(time=-1.0, element="gpu0", event=EVENT_GPU_FAIL,
                       severity=0.0)

    def test_generator_validation(self):
        with pytest.raises(ConfigError, match="MTTF"):
            TraceGenConfig(link_mttf_cycles=-1.0)
        with pytest.raises(ConfigError, match="loss_rates"):
            TraceGenConfig(loss_rates=())


class TestFingerprintRefusal:
    def test_wrong_gpu_count_names_field(self):
        trace = generate_trace(_config("p2p", 8), GEN)
        with pytest.raises(TraceFingerprintError) as info:
            validate_trace(trace, _config("p2p", 16))
        assert "num_gpus" in str(info.value)
        assert "num_gpus" in info.value.mismatched_fields

    def test_wrong_topology_kind_names_field(self):
        trace = generate_trace(_config("switch"), GEN)
        with pytest.raises(TraceFingerprintError) as info:
            validate_trace(trace, _config("ring"))
        assert "kind" in info.value.mismatched_fields
        assert "trace='switch'" in str(info.value)

    def test_is_a_config_error(self):
        trace = generate_trace(_config(), GEN)
        with pytest.raises(ConfigError):
            validate_trace(trace, _config(num_gpus=4))

    def test_matching_system_passes(self):
        trace = generate_trace(_config("ring", 8), GEN)
        validate_trace(trace, _config("ring", 8))


class TestPlanProjection:
    def _trace_with_gpu_episode(self, fail_at, repair_at, config=None):
        config = config or _config()
        base = generate_trace(config, TraceGenConfig(
            seed=0, frames=5, frame_cycles=100_000.0,
            link_mttf_cycles=None, degrade_mttf_cycles=None,
            gpu_mttf_cycles=None))
        events = (
            TraceEvent(time=fail_at, element="gpu2", event=EVENT_GPU_FAIL,
                       severity=0.0),
            TraceEvent(time=repair_at, element="gpu2",
                       event=EVENT_GPU_REPAIR, severity=1.0),
        )
        return FailureTrace(version=base.version,
                            fingerprint=base.fingerprint,
                            topology=base.topology,
                            generator=base.generator, events=events)

    def test_failstop_carries_across_frames(self):
        config = _config()
        trace = self._trace_with_gpu_episode(150_000.0, 350_000.0)
        assert plan_for_window(trace, config, 0) is None
        mid = plan_for_window(trace, config, 1)
        assert mid.gpu_failures == \
            tuple([type(mid.gpu_failures[0])(gpu=2, cycle=50_000.0)])
        carried = plan_for_window(trace, config, 2)
        assert carried.failure_cycle(2) == 0.0  # dead from the window start
        # repaired at 350k, mid-window 3: the repair only takes effect at
        # the next frame boundary, so frame 3 still runs without GPU2
        assert plan_for_window(trace, config, 3).failure_cycle(2) == 0.0
        assert plan_for_window(trace, config, 4) is None  # alive again

    def test_plan_pins_gpu_count(self):
        trace = self._trace_with_gpu_episode(10_000.0, 500_000.0)
        plan = plan_for_window(trace, _config(), 0)
        assert plan.gpus == 8
        with pytest.raises(ConfigError):
            plan.validate_for(16)

    def test_out_of_horizon_frame_rejected(self):
        trace = generate_trace(_config(), GEN)
        with pytest.raises(ConfigError, match="horizon"):
            plan_for_window(trace, _config(), GEN.frames)

    def test_windows_are_disjoint_and_clipped(self):
        config = _config()
        trace = generate_trace(config, GEN)
        for frame in range(GEN.frames):
            plan = plan_for_window(trace, config, frame)
            if plan is None:
                continue
            windows = sorted(plan.degraded_windows, key=lambda w: w.start)
            for window in windows:
                assert 0.0 <= window.start < window.end <= GEN.frame_cycles
            for prev, nxt in zip(windows, windows[1:]):
                assert prev.end <= nxt.start

    def test_validates_fingerprint_before_projecting(self):
        trace = generate_trace(_config("p2p", 8), GEN)
        with pytest.raises(TraceFingerprintError):
            plan_for_window(trace, _config("p2p", 4), 0)


class TestRingSwitchFabrics:
    def test_images_unchanged_by_fabric_faults(self):
        from repro.faults import DegradedWindow, FaultPlan, GPUFailure
        plan = FaultPlan(seed=3, corrupt_probability=0.01,
                         gpu_failures=(GPUFailure(gpu=2, cycle=20_000.0),),
                         degraded_windows=(
                             DegradedWindow(10_000, 40_000, 0.5),),
                         gpus=8)
        for topology in ("ring", "switch"):
            clean = run_benchmark_direct(
                "chopin+sched", "wolf",
                make_setup("tiny", 8, topology=topology))
            faulted = run_benchmark_direct(
                "chopin+sched", "wolf",
                make_setup("tiny", 8, topology=topology, faults=plan))
            assert np.array_equal(clean.image.color, faulted.image.color)
            assert np.array_equal(clean.image.depth, faulted.image.depth)
            assert faulted.stats.failed_gpus == [2]

    def test_ring_pays_multi_hop_latency(self):
        p2p = run_benchmark_direct("chopin", "wolf", make_setup("tiny", 8))
        ring = run_benchmark_direct(
            "chopin", "wolf", make_setup("tiny", 8, topology="ring"))
        assert ring.stats.frame_cycles > p2p.stats.frame_cycles

    def test_switch_pays_crossbar_latency(self):
        p2p = run_benchmark_direct("chopin", "wolf", make_setup("tiny", 8))
        switch = run_benchmark_direct(
            "chopin", "wolf", make_setup("tiny", 8, topology="switch"))
        assert switch.stats.frame_cycles > p2p.stats.frame_cycles

    def test_switch_fields_only_fingerprint_switch(self):
        fields = fingerprint_fields(_config("switch"))
        assert "switch_latency_cycles" in fields
        assert "switch_latency_cycles" not in fingerprint_fields(_config())


class TestSoak:
    def test_soak_bit_identical_with_carryover(self):
        setup = make_setup("tiny", 8)
        trace = generate_trace(setup.config, GEN)
        report = run_soak(trace, "chopin+sched", "wolf", setup)
        assert len(report.frames) == GEN.frames
        assert report.all_identical
        assert report.trace_fingerprint == trace.fingerprint
        dead_per_frame = [set(f.failed_gpus) for f in report.frames]
        # with this seed GPUs die mid-trace and stay dead in later frames
        assert any(dead_per_frame)
        for earlier, later in zip(dead_per_frame, dead_per_frame[1:]):
            # carry-over: a dead GPU only disappears via a trace repair,
            # which this trace's horizon is too short to reach
            assert earlier <= later
        for frame in report.frames:
            assert frame.stats.frame_index == frame.frame_index
            assert frame.stats.fault_events == frame.fault_events
            assert frame.stats.baseline_frame_cycles == \
                report.frames[0].baseline_frame_cycles
            if frame.fault_events:
                assert frame.recovery_overhead_cycles >= 0.0

    def test_soak_frame_count_clamped_to_horizon(self):
        setup = make_setup("tiny", 8)
        trace = generate_trace(setup.config, GEN)
        report = run_soak(trace, "chopin+sched", "wolf", setup, frames=2)
        assert len(report.frames) == 2
        with pytest.raises(ConfigError, match="horizon"):
            run_soak(trace, "chopin+sched", "wolf", setup,
                     frames=GEN.frames + 1)

    def test_soak_refuses_wrong_fabric(self):
        setup = make_setup("tiny", 8)
        trace = generate_trace(
            make_setup("tiny", 8, topology="switch").config, GEN)
        with pytest.raises(TraceFingerprintError):
            run_soak(trace, "chopin+sched", "wolf", setup)

    def test_soak_csv_rows(self, tmp_path):
        from repro.harness.export import SOAK_COLUMNS, soak_rows, \
            write_soak_csv
        setup = make_setup("tiny", 8)
        trace = generate_trace(setup.config, GEN)
        report = run_soak(trace, "chopin+sched", "wolf", setup, frames=2)
        rows = soak_rows(report)
        assert len(rows) == 2
        assert all(set(row) == set(SOAK_COLUMNS) for row in rows)
        path = tmp_path / "soak.csv"
        write_soak_csv(report, path)
        header = path.read_text().splitlines()[0]
        assert header == ",".join(SOAK_COLUMNS)


class TestCLI:
    def _gen(self, tmp_path, *extra):
        path = tmp_path / "trace.json"
        code = main(["gen-trace", str(path), "--seed", "11",
                     "--frames", "3", "--frame-cycles", "100000",
                     "--link-mttf", "400000", "--link-mttr", "50000",
                     "--gpu-mttf", "2000000", "--gpu-mttr", "500000",
                     *extra])
        assert code == EXIT_OK
        return path

    def test_gen_trace_and_soak(self, capsys, tmp_path):
        path = self._gen(tmp_path)
        assert main(["soak", "wolf", "--trace", str(path),
                     "--frames", "2"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "identical" in out
        assert "recovery overhead" in out

    def test_soak_writes_csv(self, capsys, tmp_path):
        path = self._gen(tmp_path)
        csv_path = tmp_path / "frames.csv"
        assert main(["soak", "wolf", "--trace", str(path), "--frames", "2",
                     "--csv", str(csv_path)]) == EXIT_OK
        assert csv_path.read_text().count("\n") == 3  # header + 2 frames

    def test_fingerprint_mismatch_exits_7(self, capsys, tmp_path):
        path = self._gen(tmp_path, "--gpus", "16", "--topology", "switch")
        assert main(["soak", "wolf", "--trace", str(path),
                     "--gpus", "8"]) == EXIT_FINGERPRINT
        err = capsys.readouterr().err
        assert "TraceFingerprintError" in err
        assert "num_gpus" in err and "kind" in err

    def test_render_accepts_trace_form(self, capsys, tmp_path):
        path = self._gen(tmp_path)
        assert main(["render", "wolf", "--fault-plan",
                     f"trace:{path}"]) == EXIT_OK
        assert main(["render", "wolf", "--gpus", "16", "--fault-plan",
                     f"trace:{path}"]) == EXIT_FINGERPRINT

    def test_render_topology_flag(self, capsys):
        assert main(["render", "wolf", "--gpus", "2", "--scheme", "chopin",
                     "--topology", "ring"]) == EXIT_OK

    def test_bad_trace_path_is_config_error(self, capsys):
        assert main(["render", "wolf", "--fault-plan",
                     "trace:/nonexistent.json"]) == EXIT_CONFIG
