"""Multi-frame animation runs and result export."""

import numpy as np
import pytest

from repro.harness import (compare_afr_sfr, make_setup, run_animation)
from repro.harness.export import (COLUMNS, collect_rows, read_rows,
                                  result_row, write_csv, write_json)
from repro.harness.runner import run_benchmark
from repro.traces import TraceSpec, synthesize
from repro.traces.trace import Trace


@pytest.fixture(scope="module")
def animated_trace():
    frames = []
    for index in range(6):
        spec = TraceSpec(name=f"f{index}", width=64, height=64,
                         num_draws=16,
                         num_triangles=500 if index % 2 else 1500,
                         seed=700 + index, cost_multiplier=4.0)
        frames.append(synthesize(spec).frame)
    return Trace(name="anim", width=64, height=64, frames=frames)


@pytest.fixture(scope="module")
def setup():
    return make_setup("tiny", num_gpus=4)


class TestAnimation:
    def test_per_frame_cycles_recorded(self, animated_trace, setup):
        result = run_animation("chopin+sched", animated_trace, setup)
        assert len(result.frame_cycles) == 6
        assert all(c > 0 for c in result.frame_cycles)

    def test_heavy_frames_cost_more(self, animated_trace, setup):
        result = run_animation("duplication", animated_trace, setup)
        heavy = result.frame_cycles[0::2]
        light = result.frame_cycles[1::2]
        # 3x the triangles => heavier frames on average (fragment cost is
        # resolution-pinned, so the gap is geometry-driven)
        assert float(np.mean(heavy)) > float(np.mean(light))

    def test_completion_monotone(self, animated_trace, setup):
        result = run_animation("chopin+sched", animated_trace, setup)
        times = result.completion_times
        assert times == sorted(times)
        assert times[-1] == pytest.approx(result.total_cycles)

    def test_stutter_reflects_variance(self, animated_trace, setup):
        result = run_animation("duplication", animated_trace, setup)
        assert result.micro_stutter > 0.1


class TestAfrVsSfr:
    def test_comparison_metrics(self, animated_trace, setup):
        report = compare_afr_sfr(animated_trace, setup)
        # SFR improves single-frame latency; AFR does not
        assert report["sfr_mean_latency"] < report["afr_mean_latency"]
        # AFR wins raw throughput (frames fully parallel)
        assert report["afr_total_cycles"] < report["sfr_total_cycles"]
        assert report["frames"] == 6


class TestExport:
    def test_row_has_all_columns(self, setup):
        result = run_benchmark("chopin+sched", "wolf", setup)
        row = result_row(result, setup, baseline_cycles=result.frame_cycles)
        assert set(row) == set(COLUMNS)
        assert row["speedup_vs_duplication"] == pytest.approx(1.0)

    def test_csv_round_trip_header(self, setup, tmp_path):
        rows = collect_rows(["wolf"], ["chopin+sched"], setup)
        path = tmp_path / "out.csv"
        write_csv(rows, path)
        lines = path.read_text().splitlines()
        assert lines[0].split(",") == list(COLUMNS)
        assert len(lines) == 1 + len(rows)

    def test_json_round_trip(self, setup, tmp_path):
        rows = collect_rows(["wolf"], ["chopin+sched", "gpupd"], setup)
        path = tmp_path / "out.json"
        write_json(rows, path)
        loaded = read_rows(path)
        assert loaded == [
            {k: v for k, v in row.items()} for row in rows]

    def test_baseline_row_included_once(self, setup):
        rows = collect_rows(["wolf"], ["duplication", "chopin+sched"],
                            setup)
        dup_rows = [r for r in rows if r["scheme"] == "duplication"]
        assert len(dup_rows) == 1
