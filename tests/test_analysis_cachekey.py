"""Cache-key soundness tests: fixtures per rule + seeded mutations.

The fixture tests pin down site parsing (3-arg / 2-arg ``cached``
forms, key-builder chasing, alias resolution), the token normalization
that maps ``trace.fingerprint`` onto a ``"trace"`` field, and the
completeness gate on ``cache-key-unused``. The meta-tests copy
``src/repro`` and seed the two bug classes the pass exists to catch —
a new input read by a cached computation without a covering key field,
and a key field nothing reads — and require the deep lint to find them
(the unmutated tree stays clean, see test_flow.py).
"""

import pathlib
import shutil
import textwrap

from repro.analysis import lint_paths
from repro.analysis.cachekey import (RULE_MISSING, RULE_UNUSED,
                                     CacheKeyChecker, normalize_token)
from repro.analysis.flow import Project
from repro.analysis.simlint import LintModule

REPO_SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def project_of(*named_sources):
    return Project.from_modules(
        (name, False, LintModule(f"{name}.py", textwrap.dedent(src)))
        for name, src in named_sources)


def cachekey_findings(source):
    return CacheKeyChecker(project_of(("fixture", source))).run()


def rules_of(findings):
    return {finding.rule for finding in findings}


# ---------------------------------------------------------- normalization


class TestNormalizeToken:
    def test_identity_suffixes_stripped(self):
        assert normalize_token("trace_fingerprint") == "trace"
        assert normalize_token("_camera_fp") == "camera"
        assert normalize_token("scene_hash") == "scene"
        assert normalize_token("frame_id") == "frame"

    def test_bare_and_short_tokens_untouched(self):
        assert normalize_token("trace") == "trace"
        # a token that IS a suffix stays itself rather than vanishing
        assert normalize_token("_fp") == "fp"


# ------------------------------------------------------- cache-key-missing


class TestCacheKeyMissing:
    def test_unkeyed_read_flagged(self):
        findings = cachekey_findings("""
            def load(store, trace, salt):
                return store.cached("frame", {"trace": trace.fingerprint},
                                    lambda: trace.frame * salt)
        """)
        assert rules_of(findings) == {RULE_MISSING}
        assert "`salt`" in findings[0].message
        assert "'frame'" in findings[0].message

    def test_covered_reads_are_clean(self):
        findings = cachekey_findings("""
            def load(store, trace, salt):
                return store.cached(
                    "frame",
                    {"trace": trace.fingerprint, "salt": salt},
                    lambda: trace.frame * salt)
        """)
        assert findings == []

    def test_fingerprint_field_covers_object_read(self):
        # key stores trace.fingerprint, compute reads trace.frame:
        # both normalize to the root object "trace"
        findings = cachekey_findings("""
            class Session:
                def load(self, store):
                    return store.cached(
                        "geo", {"camera": self._camera_fp},
                        lambda: self.camera.project())
        """)
        assert findings == []

    def test_key_builder_function_chased(self):
        findings = cachekey_findings("""
            def _fields(trace, scale):
                return {"trace": trace.fingerprint, "scale": scale}

            def load(store, trace, scale, salt):
                return store.cached("frame", _fields(trace, scale),
                                    lambda: trace.frame * scale + salt)
        """)
        assert rules_of(findings) == {RULE_MISSING}
        assert "`salt`" in findings[0].message

    def test_two_arg_form_with_key_alias(self):
        findings = cachekey_findings("""
            def store_key(kind, fields):
                return (kind, tuple(sorted(fields)))

            def load(store, trace, salt):
                key = store_key("frame", {"trace": trace.fingerprint})
                return store.cached(key, lambda: trace.frame * salt)
        """)
        assert RULE_MISSING in rules_of(findings)
        assert any("`salt`" in f.message for f in findings)

    def test_nested_def_compute(self):
        findings = cachekey_findings("""
            def load(store, trace, salt):
                def compute():
                    return trace.frame * salt
                return store.cached("frame", {"trace": trace.fingerprint},
                                    compute)
        """)
        assert RULE_MISSING in rules_of(findings)
        assert any("`salt`" in f.message for f in findings)

    def test_forwarded_fields_parameter_skipped(self):
        # plumbing that forwards kind/fields/compute verbatim is not a
        # keyed site itself (RenderService.cached shape)
        findings = cachekey_findings("""
            class Service:
                def cached(self, kind, fields, compute):
                    return self.store.cached(kind, fields, compute)
        """)
        assert findings == []


# -------------------------------------------------------- cache-key-unused


class TestCacheKeyUnused:
    def test_unread_field_flagged(self):
        findings = cachekey_findings("""
            def load(store, trace):
                return store.cached(
                    "frame",
                    {"trace": trace.fingerprint, "salt": 3},
                    lambda: trace.frame)
        """)
        assert rules_of(findings) == {RULE_UNUSED}
        assert "salt" in findings[0].message

    def test_unused_gated_on_complete_analysis(self):
        # the compute calls an unresolvable function, so the input set
        # is a lower bound — no field can be proven unread
        findings = cachekey_findings("""
            def load(store, trace):
                return store.cached(
                    "frame",
                    {"trace": trace.fingerprint, "salt": 3},
                    lambda: mystery(trace))
        """)
        assert findings == []

    def test_severity_is_warning(self):
        findings = lint_of_unused()
        assert findings and findings[0].severity == "warning"


def lint_of_unused(tmp_dir=None):
    """Run the full deep-lint path so pass severities apply."""
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        target = pathlib.Path(tmp) / "consumer.py"
        target.write_text(textwrap.dedent("""
            def load(store, trace):
                return store.cached(
                    "frame",
                    {"trace": trace.fingerprint, "salt": 3},
                    lambda: trace.frame)
        """))
        return [f for f in lint_paths([target], deep=True)
                if f.rule == RULE_UNUSED]


# ------------------------------------------------------ seeded mutations


def _copy_src_repro(tmp_path):
    tree = tmp_path / "repro"
    shutil.copytree(REPO_SRC, tree)
    return tree


def _mutate(tree, relative, old, new):
    target = tree / relative
    source = target.read_text()
    mutated = source.replace(old, new)
    assert mutated != source, f"mutation anchor vanished from {relative}"
    target.write_text(mutated)


class TestCacheKeyMeta:
    def test_unkeyed_input_in_render_session_is_found(self, tmp_path):
        tree = _copy_src_repro(tmp_path)
        # the geometry artifact starts depending on a jitter the key
        # does not cover — exactly the stale-cache bug class
        _mutate(tree, "render/service.py",
                "lambda: geometry_phase(draw, self.camera,",
                "lambda: geometry_phase(draw, self.camera * self.jitter,")
        findings = [f for f in lint_paths([tree], deep=True)
                    if f.rule == RULE_MISSING]
        assert findings, "seeded un-keyed read not detected"
        assert all(f.path.endswith("service.py") for f in findings)
        assert any("`jitter`" in f.message for f in findings)
        assert findings[0].severity == "error"

    def test_dead_key_field_is_found(self, tmp_path):
        tree = _copy_src_repro(tmp_path)
        probe = textwrap.dedent("""

            def _lint_probe(store, trace):
                return store.cached(
                    store_key("probe", {"trace": trace.fingerprint,
                                        "salt": 3}),
                    lambda: trace.frame)
        """)
        target = tree / "render" / "store.py"
        target.write_text(target.read_text() + probe)
        findings = [f for f in lint_paths([tree], deep=True)
                    if f.rule == RULE_UNUSED]
        assert findings, "seeded dead key field not detected"
        assert findings[0].path.endswith("store.py")
        assert "salt" in findings[0].message
