"""Cycle-cost model, GPU engine pipelining, interconnect timing."""

import pytest

from repro.config import GPUConfig, SystemConfig
from repro.errors import ConfigError, SimulationError
from repro.sim import Event, Simulator
from repro.stats import (GPUStats, RunStats, STAGE_COMPOSITION,
                         STAGE_FRAGMENT, STAGE_GEOMETRY, TRAFFIC_COMPOSITION)
from repro.timing import CostModel, DrawWork, GPUEngine, Interconnect


@pytest.fixture()
def costs():
    return CostModel(gpu=GPUConfig())


class TestCostModel:
    def test_geometry_scales_with_sms(self, costs):
        assert costs.geometry_cycles(80, vertex_cost=8.0) == 80.0
        wide = CostModel(gpu=GPUConfig(num_sms=16))
        assert wide.geometry_cycles(80, 8.0) == 40.0

    def test_fragment_includes_raster_term(self, costs):
        cycles = costs.fragment_cycles(10, 100, pixel_cost=8.0)
        assert cycles == pytest.approx((10 * 1.0 + 100 * 8.0) / 8)

    def test_projection_fraction(self, costs):
        full = costs.geometry_cycles(100, 10.0)
        proj = costs.projection_cycles(100, 10.0)
        assert proj == pytest.approx(full * costs.projection_fraction)

    def test_compose_cycles(self, costs):
        assert costs.compose_cycles(800) == pytest.approx(
            800 * costs.compose_cost_per_pixel / 8)

    def test_bad_projection_fraction(self):
        with pytest.raises(ConfigError):
            CostModel(gpu=GPUConfig(), projection_fraction=0.0)


class TestGPUEngine:
    def run_engine(self, works, update_interval=1 << 30, on_triangles=None):
        sim = Simulator()
        stats = GPUStats()
        engine = GPUEngine(sim, 0, CostModel(gpu=GPUConfig()), stats,
                           update_interval=update_interval,
                           on_triangles=on_triangles)

        def proc():
            yield from engine.run_draws(works)
            yield engine.drain()

        sim.process(proc())
        return sim.run(), stats

    def test_single_draw_serial_time(self):
        works = [DrawWork(0, 10, geometry_cycles=100, fragment_cycles=50)]
        now, stats = self.run_engine(works)
        assert now == pytest.approx(150)
        assert stats.stage_cycles[STAGE_GEOMETRY] == 100
        assert stats.stage_cycles[STAGE_FRAGMENT] == 50
        assert stats.triangles_processed == 10

    def test_two_stage_overlap(self):
        """Geometry of draw 2 overlaps fragments of draw 1: the total is
        geo1 + max(geo2, frag1) + frag2, not the serial sum."""
        works = [DrawWork(0, 1, geometry_cycles=100, fragment_cycles=300),
                 DrawWork(1, 1, geometry_cycles=100, fragment_cycles=50)]
        now, _ = self.run_engine(works)
        # t=100 geo1 done; frag1 runs 100..400; geo2 runs 100..200;
        # frag2 runs 400..450
        assert now == pytest.approx(450)

    def test_fragment_bound_pipeline(self):
        works = [DrawWork(i, 1, geometry_cycles=10, fragment_cycles=100)
                 for i in range(5)]
        now, _ = self.run_engine(works)
        assert now == pytest.approx(10 + 5 * 100)

    def test_geometry_bound_pipeline(self):
        works = [DrawWork(i, 1, geometry_cycles=100, fragment_cycles=10)
                 for i in range(5)]
        now, _ = self.run_engine(works)
        assert now == pytest.approx(5 * 100 + 10)

    def test_progress_reports_chunked(self):
        reports = []
        works = [DrawWork(0, 100, geometry_cycles=100, fragment_cycles=0)]
        self.run_engine(works, update_interval=32,
                        on_triangles=lambda gpu, n: reports.append(n))
        assert reports == [32, 32, 32, 4]

    def test_progress_reports_every_triangle(self):
        reports = []
        works = [DrawWork(0, 5, geometry_cycles=10, fragment_cycles=0)]
        self.run_engine(works, update_interval=1,
                        on_triangles=lambda gpu, n: reports.append(n))
        assert reports == [1] * 5

    def test_drain_immediate_when_idle(self):
        sim = Simulator()
        engine = GPUEngine(sim, 0, CostModel(gpu=GPUConfig()), GPUStats())
        assert engine.drain().triggered

    def test_busy_work_charges_stage(self):
        sim = Simulator()
        stats = GPUStats()
        engine = GPUEngine(sim, 0, CostModel(gpu=GPUConfig()), stats)

        def proc():
            yield from engine.busy_work(123.0, STAGE_COMPOSITION)

        sim.process(proc())
        assert sim.run() == pytest.approx(123.0)
        assert stats.stage_cycles[STAGE_COMPOSITION] == 123.0


class TestInterconnect:
    def make(self, num_gpus=4, **link_kwargs):
        config = SystemConfig(num_gpus=num_gpus).with_link(**link_kwargs) \
            if link_kwargs else SystemConfig(num_gpus=num_gpus)
        sim = Simulator()
        stats = RunStats(num_gpus=num_gpus)
        return sim, Interconnect(sim, config, stats), stats

    def test_transfer_time_is_occupancy_plus_latency(self):
        sim, icn, _ = self.make()
        done = []

        def proc():
            yield from icn.transfer(0, 1, 6400, TRAFFIC_COMPOSITION)
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [pytest.approx(6400 / 64 + 200)]

    def test_traffic_recorded_on_sender(self):
        sim, icn, stats = self.make()
        sim.process(icn.transfer(0, 2, 1000, TRAFFIC_COMPOSITION))
        sim.run()
        assert stats.gpus[0].traffic_bytes[TRAFFIC_COMPOSITION] == 1000
        assert stats.traffic_total(TRAFFIC_COMPOSITION) == 1000

    def test_egress_serializes_sends(self):
        sim, icn, _ = self.make()
        ends = []

        def send(dst):
            yield from icn.transfer(0, dst, 6400, TRAFFIC_COMPOSITION)
            ends.append(sim.now)

        sim.process(send(1))
        sim.process(send(2))
        sim.run()
        # occupancies serialize on GPU0's egress; latencies overlap
        assert ends[0] == pytest.approx(100 + 200)
        assert ends[1] == pytest.approx(200 + 200)

    def test_ingress_serializes_receives(self):
        sim, icn, _ = self.make()
        ends = []

        def send(src):
            yield from icn.transfer(src, 3, 6400, TRAFFIC_COMPOSITION)
            ends.append(sim.now)

        sim.process(send(0))
        sim.process(send(1))
        sim.run()
        assert ends[1] - ends[0] == pytest.approx(100)

    def test_gate_parks_message_and_blocks_egress(self):
        sim, icn, _ = self.make()
        gate = Event(sim)
        ends = {}

        def gated():
            yield from icn.transfer(0, 1, 640, TRAFFIC_COMPOSITION,
                                    gate=gate)
            ends["gated"] = sim.now

        def follower():
            yield from icn.transfer(0, 2, 640, TRAFFIC_COMPOSITION)
            ends["follower"] = sim.now

        def opener():
            yield sim.timeout(1000)
            gate.succeed()

        sim.process(gated())
        sim.process(follower())
        sim.process(opener())
        sim.run()
        # the parked message pins GPU0's egress until the gate opens, so the
        # ungated follower is head-of-line blocked behind it
        assert ends["gated"] == pytest.approx(1000 + 10 + 200)
        assert ends["follower"] > 1000

    def test_receive_cycles_extend_completion(self):
        sim, icn, _ = self.make()
        done = []

        def proc():
            yield from icn.transfer(0, 1, 640, TRAFFIC_COMPOSITION,
                                    receive_cycles=500)
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [pytest.approx(10 + 200 + 500)]

    def test_ports_released_fires_before_tail(self):
        sim, icn, _ = self.make()
        released = Event(sim)
        times = {}

        def proc():
            yield from icn.transfer(0, 1, 640, TRAFFIC_COMPOSITION,
                                    receive_cycles=500,
                                    ports_released=released)
            times["done"] = sim.now

        def watcher():
            yield released
            times["released"] = sim.now

        sim.process(proc())
        sim.process(watcher())
        sim.run()
        assert times["released"] == pytest.approx(10)
        assert times["done"] == pytest.approx(10 + 200 + 500)

    def test_ideal_link_is_instant_but_counts_traffic(self):
        sim, icn, stats = self.make(ideal=True)
        done = []

        def proc():
            yield from icn.transfer(0, 1, 10**9, TRAFFIC_COMPOSITION)
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [0.0]
        assert stats.traffic_total(TRAFFIC_COMPOSITION) == 10**9

    def test_transfer_to_self_rejected(self):
        sim, icn, _ = self.make()
        with pytest.raises(SimulationError):
            list(icn.transfer(1, 1, 100, TRAFFIC_COMPOSITION))

    def test_broadcast_reaches_everyone(self):
        sim, icn, stats = self.make(num_gpus=4)

        def proc():
            yield from icn.broadcast(0, 640, TRAFFIC_COMPOSITION)

        sim.process(proc())
        sim.run()
        assert stats.gpus[0].traffic_bytes[TRAFFIC_COMPOSITION] == 3 * 640


class TestSharedBusTopology:
    def make_bus(self, bus_x=1.0):
        from dataclasses import replace
        config = SystemConfig(num_gpus=4)
        config = replace(config, link=replace(
            config.link, topology="bus", bus_bandwidth_x=bus_x))
        sim = Simulator()
        stats = RunStats(num_gpus=4)
        return sim, Interconnect(sim, config, stats), stats

    def test_bus_serializes_disjoint_pairs(self):
        """On p2p, 0->1 and 2->3 run concurrently; on a 1x bus they
        serialize."""
        sim, icn, _ = self.make_bus(bus_x=1.0)
        ends = []

        def send(src, dst):
            yield from icn.transfer(src, dst, 6400, TRAFFIC_COMPOSITION)
            ends.append(sim.now)

        sim.process(send(0, 1))
        sim.process(send(2, 3))
        sim.run()
        assert ends[0] == pytest.approx(100 + 200)
        assert ends[1] == pytest.approx(200 + 200)  # waited for the bus

    def test_bus_multiplier_scales_bandwidth(self):
        sim, icn, _ = self.make_bus(bus_x=4.0)
        done = []

        def send():
            yield from icn.transfer(0, 1, 6400, TRAFFIC_COMPOSITION)
            done.append(sim.now)

        sim.process(send())
        sim.run()
        assert done == [pytest.approx(6400 / 256 + 200)]

    def test_unknown_topology_rejected(self):
        from dataclasses import replace
        from repro.config import LinkConfig
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            LinkConfig(topology="torus")
        with pytest.raises(ConfigError):
            LinkConfig(bus_bandwidth_x=0.0)


class TestMemoryRoofline:
    def test_disabled_by_default(self):
        costs = CostModel(gpu=GPUConfig())
        assert costs.fragment_memory_cycles(10_000) == 0.0

    def test_compute_bound_unchanged(self):
        costs = CostModel(gpu=GPUConfig(), model_memory=True)
        plain = CostModel(gpu=GPUConfig())
        # Table II bandwidth: compute dominates for realistic pixel costs
        assert costs.fragment_cycles(10, 1000, pixel_cost=100.0) \
            == plain.fragment_cycles(10, 1000, pixel_cost=100.0)

    def test_memory_bound_when_starved(self):
        starved = CostModel(
            gpu=GPUConfig(dram_bandwidth_bytes_per_s=10**9),  # 1 GB/s
            model_memory=True)
        cycles = starved.fragment_cycles(10, 1000, pixel_cost=2.0)
        assert cycles == pytest.approx(
            starved.fragment_memory_cycles(1000))
        assert cycles > 1000 * 2.0 / 8

    def test_l2_filters_traffic(self):
        hot = CostModel(gpu=GPUConfig(dram_bandwidth_bytes_per_s=10**9),
                        model_memory=True, l2_hit_rate=0.9)
        cold = CostModel(gpu=GPUConfig(dram_bandwidth_bytes_per_s=10**9),
                         model_memory=True, l2_hit_rate=0.0)
        assert hot.fragment_memory_cycles(1000) \
            < cold.fragment_memory_cycles(1000)

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigError):
            CostModel(gpu=GPUConfig(), l2_hit_rate=1.5)
        with pytest.raises(ConfigError):
            CostModel(gpu=GPUConfig(), fragment_memory_bytes=-1)


class TestMsaaConfig:
    def test_effective_pixel_bytes(self):
        from dataclasses import replace
        config = SystemConfig()
        assert config.effective_pixel_bytes == 8
        assert replace(config, msaa_samples=4).effective_pixel_bytes == 32

    def test_invalid_sample_count(self):
        from repro.errors import ConfigError as CfgErr
        with pytest.raises(CfgErr):
            SystemConfig(msaa_samples=3)
