"""Fault injection: plans, link retries, fail-stop recovery, determinism.

The fault model's contract has three pillars the suite pins down:

1. a plan with zero probabilities and no failures is *exactly* a fault-free
   run (bit-identical cycles and image — the injector never even draws a
   random number);
2. everything is seeded: the same plan produces the same run, every time;
3. recovery is *correct*: after transient link errors or a fail-stopped GPU
   the frame still matches the single-GPU reference image, and the reported
   overhead counters describe what recovery cost.
"""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError, FaultError
from repro.faults import (DegradedWindow, FaultInjector, FaultPlan,
                          GPUFailure, OUTCOME_CORRUPT, OUTCOME_DROP,
                          parse_fault_plan)
from repro.faults.degraded import (first_unfinished_group, merge_chunks,
                                   nearest_survivor, redistribute_draw_works,
                                   repair_region_matrix)
from repro.harness import build_scheme, make_setup
from repro.stats import RunStats
from repro.timing.interconnect import Interconnect
from repro.traces import load_benchmark


# ---------------------------------------------------------------------------
# FaultPlan / parsing


class TestFaultPlan:
    def test_default_plan_is_harmless(self):
        plan = FaultPlan()
        assert plan.error_probability == 0.0
        assert not plan.affects_links
        assert plan.failed_gpus == ()

    def test_degraded_windows_alone_affect_links(self):
        plan = FaultPlan(degraded_windows=(
            DegradedWindow(start=0, end=100, bandwidth_factor=0.5),))
        assert plan.affects_links

    def test_overlapping_windows_rejected_at_construction(self):
        with pytest.raises(ConfigError, match="overlap"):
            FaultPlan(degraded_windows=(
                DegradedWindow(start=0, end=100, bandwidth_factor=0.5),
                DegradedWindow(start=50, end=200, bandwidth_factor=0.25)))

    def test_disjoint_windows_each_apply(self):
        plan = FaultPlan(degraded_windows=(
            DegradedWindow(start=0, end=100, bandwidth_factor=0.5),
            DegradedWindow(start=100, end=200, bandwidth_factor=0.25)))
        assert plan.bandwidth_factor_at(25) == 0.5
        assert plan.bandwidth_factor_at(150) == 0.25
        assert plan.bandwidth_factor_at(500) == 1.0

    def test_plan_gpus_bounds_failstop_indices(self):
        with pytest.raises(ConfigError, match="GPU7"):
            FaultPlan(gpus=4,
                      gpu_failures=(GPUFailure(gpu=7, cycle=1000.0),))
        plan = FaultPlan(gpus=8,
                         gpu_failures=(GPUFailure(gpu=7, cycle=1000.0),))
        plan.validate_for(8)
        with pytest.raises(ConfigError, match="written for 8"):
            plan.validate_for(16)

    def test_failure_cycle_lookup(self):
        plan = FaultPlan(gpu_failures=(GPUFailure(gpu=3, cycle=1000.0),))
        assert plan.failure_cycle(3) == 1000.0
        with pytest.raises(ConfigError):
            plan.failure_cycle(4)

    def test_validate_for_rejects_out_of_range_gpu(self):
        plan = FaultPlan(gpu_failures=(GPUFailure(gpu=8, cycle=0.0),))
        with pytest.raises(ConfigError, match="only has 8 GPUs"):
            plan.validate_for(8)

    def test_validate_for_rejects_killing_every_gpu(self):
        plan = FaultPlan(gpu_failures=(GPUFailure(gpu=0, cycle=0.0),
                                       GPUFailure(gpu=1, cycle=50.0)))
        with pytest.raises(ConfigError, match="no survivors"):
            plan.validate_for(2)
        plan.validate_for(3)  # one survivor is enough


class TestParseFaultPlan:
    def test_full_spec_round_trip(self):
        plan = parse_fault_plan(
            "seed=42,drop=0.01,corrupt=0.002,retries=5,backoff=32,"
            "detect=800,fail=2@50000,slow=1000:9000:0.25")
        assert plan.seed == 42
        assert plan.drop_probability == 0.01
        assert plan.corrupt_probability == 0.002
        assert plan.retry_budget == 5
        assert plan.backoff_base_cycles == 32.0
        assert plan.drop_detection_cycles == 800.0
        assert plan.gpu_failures == (GPUFailure(gpu=2, cycle=50000.0),)
        assert plan.degraded_windows == (
            DegradedWindow(start=1000.0, end=9000.0, bandwidth_factor=0.25),)

    def test_fail_and_slow_repeat(self):
        plan = parse_fault_plan("fail=1@10; fail=3@20; slow=0:5:0.5")
        assert plan.failed_gpus == (1, 3)
        assert len(plan.degraded_windows) == 1

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault-plan key"):
            parse_fault_plan("sprinkle=0.1")

    def test_malformed_value_rejected(self):
        with pytest.raises(ConfigError):
            parse_fault_plan("drop=lots")
        with pytest.raises(ConfigError):
            parse_fault_plan("fail=2")
        with pytest.raises(ConfigError):
            parse_fault_plan("slow=1000:9000")
        with pytest.raises(ConfigError):
            parse_fault_plan("justakey")


class TestFaultInjector:
    def test_zero_probability_never_errors(self):
        injector = FaultInjector(FaultPlan(seed=5))
        outcomes = {injector.transfer_outcome(0, 1) for _ in range(200)}
        assert outcomes == {"ok"}

    def test_certain_drop_and_certain_corrupt(self):
        dropper = FaultInjector(FaultPlan(drop_probability=1.0))
        corrupter = FaultInjector(FaultPlan(corrupt_probability=1.0))
        assert dropper.transfer_outcome(0, 1) == OUTCOME_DROP
        assert corrupter.transfer_outcome(0, 1) == OUTCOME_CORRUPT

    def test_same_seed_same_outcome_sequence(self):
        plan = FaultPlan(seed=17, drop_probability=0.3,
                         corrupt_probability=0.2)
        a, b = FaultInjector(plan), FaultInjector(plan)
        seq_a = [a.transfer_outcome(0, 1) for _ in range(100)]
        seq_b = [b.transfer_outcome(0, 1) for _ in range(100)]
        assert seq_a == seq_b
        assert len(set(seq_a)) == 3  # all three outcomes appear

    def test_backoff_doubles_per_attempt(self):
        injector = FaultInjector(FaultPlan(backoff_base_cycles=16.0))
        assert injector.backoff_cycles(1) == 16.0
        assert injector.backoff_cycles(2) == 32.0
        assert injector.backoff_cycles(3) == 64.0
        with pytest.raises(ConfigError):
            injector.backoff_cycles(0)


# ---------------------------------------------------------------------------
# Degraded-mode planning helpers


class TestDegradedHelpers:
    def test_first_unfinished_group(self):
        ends = [100.0, 250.0, 400.0]
        assert first_unfinished_group(ends, 0.0) == 0
        assert first_unfinished_group(ends, 100.0) == 1
        assert first_unfinished_group(ends, 300.0) == 2
        assert first_unfinished_group(ends, 400.0) == 3  # after frame end

    def test_nearest_survivor_ties_break_left(self):
        assert nearest_survivor(2, [0, 1, 3, 4]) == 1
        assert nearest_survivor(0, [1, 2, 3]) == 1
        assert nearest_survivor(3, [0, 1]) == 1
        with pytest.raises(FaultError):
            nearest_survivor(0, [])

    def test_redistribute_targets_least_loaded_survivor(self):
        class Work:
            def __init__(self, triangles):
                self.triangles = triangles

        targets = redistribute_draw_works(
            [Work(10), Work(10)], alive=[0, 1, 3],
            base_triangles={0: 100, 1: 5, 3: 100}, num_gpus=4)
        assert targets[0] == 1  # least loaded survivor, never GPU2
        assert set(targets) <= {0, 1, 3}

    def test_repair_region_matrix_conserves_traffic(self):
        matrix = np.arange(16).reshape(4, 4)
        np.fill_diagonal(matrix, 0)
        repaired = repair_region_matrix(matrix, dead=[2], inherit={2: 1})
        assert repaired[2, :].sum() == 0 and repaired[:, 2].sum() == 0
        assert np.all(np.diagonal(repaired) == 0)
        # inheritor absorbs the dead GPU's off-diagonal traffic except the
        # (2, 1) / (1, 2) messages, which become local composition
        lost = matrix[2, 1] + matrix[1, 2]
        assert repaired.sum() == matrix.sum() - lost

    def test_merge_chunks_keeps_contiguity(self):
        merged = merge_chunks(range(4), dead=[2], inherit_chunk={2: 1})
        assert merged == {0: [0], 1: [1, 2], 3: [3]}
        # a non-adjacent inheritor would interleave blending order
        with pytest.raises(FaultError, match="contiguity"):
            merge_chunks(range(4), dead=[1], inherit_chunk={1: 3})


# ---------------------------------------------------------------------------
# Interconnect-level behaviour (DES)


def _drive_transfer(config, num_bytes=4096.0):
    """Run one src->dst transfer; returns (stats, cycles)."""
    from repro.sim import Simulator
    sim = Simulator()
    stats = RunStats(num_gpus=config.num_gpus)
    net = Interconnect(sim, config, stats)
    proc = sim.process(net.transfer(0, 1, num_bytes, "test"), name="xfer")
    cycles = sim.run()
    assert proc.triggered
    return stats, cycles


class TestInterconnectFaults:
    def test_retry_budget_exhaustion_raises_fault_error(self):
        config = SystemConfig(num_gpus=2, faults=FaultPlan(
            corrupt_probability=1.0, retry_budget=2))
        with pytest.raises(FaultError, match="exhausted its retry budget"):
            _drive_transfer(config)

    def test_transient_errors_retry_and_count(self):
        plan = FaultPlan(seed=11, drop_probability=0.4,
                         corrupt_probability=0.2, retry_budget=64)
        config = SystemConfig(num_gpus=2, faults=plan)
        clean, clean_cycles = _drive_transfer(SystemConfig(num_gpus=2))
        stats, cycles = _drive_transfer(config)
        assert stats.link_retries > 0
        assert stats.dropped_transfers + stats.corrupted_transfers \
            == stats.link_retries
        assert stats.retransmitted_bytes == 4096.0 * stats.link_retries
        assert stats.backoff_cycles > 0
        assert cycles > clean_cycles
        assert clean.link_retries == 0

    def test_degraded_window_scales_occupancy(self):
        from repro.sim import Simulator
        plan = FaultPlan(degraded_windows=(
            DegradedWindow(start=1000, end=2000, bandwidth_factor=0.25),))
        config = SystemConfig(num_gpus=2, faults=plan)
        net = Interconnect(Simulator(), config,
                           RunStats(num_gpus=2))
        nominal = net.occupancy_cycles(4096.0, at=0.0)
        slowed = net.occupancy_cycles(4096.0, at=1500.0)
        assert slowed == pytest.approx(4.0 * nominal)

    def test_killed_transfer_releases_ports(self):
        from repro.sim import Simulator
        sim = Simulator()
        config = SystemConfig(num_gpus=2)
        net = Interconnect(sim, config, RunStats(num_gpus=2))
        proc = sim.process(net.transfer(0, 1, 1e9, "test"), name="doomed")

        def killer():
            yield sim.timeout(10.0)  # mid-stream
            assert net.egress[0].count == 1
            assert net.ingress[1].count == 1
            proc.kill()
            yield sim.timeout(0.0)
            assert net.egress[0].count == 0
            assert net.ingress[1].count == 0

        sim.process(killer(), name="killer")
        sim.run()
        assert proc.killed and proc.triggered


# ---------------------------------------------------------------------------
# Whole-scheme runs


@pytest.fixture(scope="module")
def wolf_tiny():
    return load_benchmark("wolf", "tiny")


def _run(trace, scheme="chopin+sched", faults=None, num_gpus=8):
    setup = make_setup("tiny", num_gpus=num_gpus, faults=faults)
    return build_scheme(scheme, setup).run(trace)


class TestSchemeFaultRuns:
    def test_zero_probability_plan_is_bit_identical_to_baseline(self,
                                                                wolf_tiny):
        clean = _run(wolf_tiny)
        nulled = _run(wolf_tiny, faults=FaultPlan(seed=123))
        assert nulled.frame_cycles == clean.frame_cycles
        assert np.array_equal(nulled.image.color, clean.image.color)
        assert nulled.stats.link_retries == 0
        assert not nulled.stats.had_faults

    def test_same_fault_seed_repeats_exactly(self, wolf_tiny):
        plan = FaultPlan(seed=9, drop_probability=0.02,
                         corrupt_probability=0.01, retry_budget=64)
        first = _run(wolf_tiny, faults=plan)
        second = _run(wolf_tiny, faults=plan)
        assert first.frame_cycles == second.frame_cycles
        assert first.stats.link_retries == second.stats.link_retries
        assert first.stats.backoff_cycles == second.stats.backoff_cycles
        assert np.array_equal(first.image.color, second.image.color)

    def test_transient_errors_slow_but_do_not_corrupt_the_frame(self,
                                                                wolf_tiny):
        plan = FaultPlan(seed=9, drop_probability=0.02,
                         corrupt_probability=0.01, retry_budget=64)
        clean = _run(wolf_tiny)
        noisy = _run(wolf_tiny, faults=plan)
        assert noisy.stats.link_retries > 0
        assert noisy.stats.had_faults
        assert noisy.frame_cycles > clean.frame_cycles
        assert np.array_equal(noisy.image.color, clean.image.color)

    def test_degraded_window_slows_the_frame(self, wolf_tiny):
        plan = FaultPlan(degraded_windows=(
            DegradedWindow(start=0, end=1e12, bandwidth_factor=0.25),))
        clean = _run(wolf_tiny)
        slowed = _run(wolf_tiny, faults=plan)
        assert slowed.frame_cycles > clean.frame_cycles
        assert np.array_equal(slowed.image.color, clean.image.color)

    @pytest.mark.parametrize("scheme", ["chopin", "chopin+sched"])
    def test_fail_stop_recovers_with_correct_image(self, wolf_tiny, scheme):
        plan = FaultPlan(gpu_failures=(GPUFailure(gpu=2, cycle=50000.0),))
        clean = _run(wolf_tiny, scheme=scheme)
        degraded = _run(wolf_tiny, scheme=scheme, faults=plan)
        assert np.array_equal(degraded.image.color, clean.image.color)
        assert degraded.stats.failed_gpus == [2]
        assert degraded.stats.redistributed_draws > 0
        assert degraded.stats.baseline_frame_cycles == clean.frame_cycles
        assert degraded.stats.recovery_overhead_cycles == \
            degraded.frame_cycles - clean.frame_cycles
        assert degraded.stats.had_faults

    def test_fail_stop_at_cycle_zero_recovers(self, wolf_tiny):
        plan = FaultPlan(gpu_failures=(GPUFailure(gpu=0, cycle=0.0),))
        clean = _run(wolf_tiny)
        degraded = _run(wolf_tiny, faults=plan)
        assert np.array_equal(degraded.image.color, clean.image.color)
        assert degraded.stats.failed_gpus == [0]

    def test_fail_stop_after_frame_end_changes_nothing(self, wolf_tiny):
        plan = FaultPlan(gpu_failures=(GPUFailure(gpu=2, cycle=1e12),))
        clean = _run(wolf_tiny)
        late = _run(wolf_tiny, faults=plan)
        assert late.frame_cycles == clean.frame_cycles
        assert np.array_equal(late.image.color, clean.image.color)
        assert late.stats.failed_gpus == []

    def test_two_staggered_failures_recover(self, wolf_tiny):
        plan = FaultPlan(gpu_failures=(GPUFailure(gpu=2, cycle=40000.0),
                                       GPUFailure(gpu=5, cycle=90000.0)))
        clean = _run(wolf_tiny)
        degraded = _run(wolf_tiny, faults=plan)
        assert np.array_equal(degraded.image.color, clean.image.color)
        assert degraded.stats.failed_gpus == [2, 5]

    def test_non_chopin_schemes_reject_fail_stop_plans(self, wolf_tiny):
        plan = FaultPlan(gpu_failures=(GPUFailure(gpu=2, cycle=50000.0),))
        setup = make_setup("tiny", num_gpus=8, faults=plan)
        for scheme in ("duplication", "gpupd", "sort-middle"):
            with pytest.raises(ConfigError, match="cannot recover"):
                build_scheme(scheme, setup)

    def test_non_chopin_schemes_accept_link_fault_plans(self, wolf_tiny):
        plan = FaultPlan(seed=4, drop_probability=0.01, retry_budget=64)
        clean = _run(wolf_tiny, scheme="gpupd", num_gpus=4)
        noisy = _run(wolf_tiny, scheme="gpupd", faults=plan, num_gpus=4)
        assert noisy.stats.link_retries > 0
        assert np.array_equal(noisy.image.color, clean.image.color)

    def test_fault_summary_rows_are_flat_scalars(self, wolf_tiny):
        plan = FaultPlan(gpu_failures=(GPUFailure(gpu=2, cycle=50000.0),))
        degraded = _run(wolf_tiny, faults=plan)
        summary = degraded.stats.fault_summary()
        from repro.harness.export import FAULT_COLUMNS
        assert set(summary) == set(FAULT_COLUMNS)
        assert all(isinstance(v, (int, float)) for v in summary.values())
        assert summary["failed_gpus"] == 1
