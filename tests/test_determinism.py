"""Determinism: identical inputs must produce bit-identical outputs.

The DES breaks simultaneous-event ties FIFO and all randomness is seeded,
so every layer — trace generation, functional rendering, scheduling,
timing — must be exactly reproducible run-to-run. Any drift here would make
the harness's cached results unrepresentative.
"""

import numpy as np

from repro.harness import build_scheme, make_setup
from repro.render import render_service
from repro.traces import TraceSpec, load_benchmark, synthesize
from repro.traces.benchmarks import clear_cache


class TestTraceDeterminism:
    def test_regenerated_benchmark_identical(self):
        first = load_benchmark("wolf", "tiny")
        clear_cache()
        second = load_benchmark("wolf", "tiny")
        assert first is not second
        assert first.num_draws == second.num_draws
        for a, b in zip(first.frame.draws, second.frame.draws):
            assert np.array_equal(a.positions, b.positions)
            assert np.array_equal(a.colors, b.colors)
            assert a.vertex_cost == b.vertex_cost
            assert a.state == b.state

    def test_spec_fully_determines_trace(self):
        spec = TraceSpec(name="d", width=64, height=64, num_draws=20,
                         num_triangles=600, seed=99)
        a, b = synthesize(spec), synthesize(spec)
        assert all(np.array_equal(x.positions, y.positions)
                   for x, y in zip(a.frame.draws, b.frame.draws))


class TestSchemeDeterminism:
    def test_duplication_cycles_exactly_repeat(self):
        setup = make_setup("tiny", num_gpus=8)
        trace = load_benchmark("wolf", "tiny")
        first = build_scheme("duplication", setup).run(trace)
        second = build_scheme("duplication", setup).run(trace)
        assert first.frame_cycles == second.frame_cycles
        assert np.array_equal(first.image.color, second.image.color)

    def test_chopin_cycles_exactly_repeat_with_cold_caches(self):
        setup = make_setup("tiny", num_gpus=8)
        trace = load_benchmark("wolf", "tiny")
        first = build_scheme("chopin+sched", setup).run(trace)
        render_service().reset()  # fully cold: geometry, reference, prep
        second = build_scheme("chopin+sched", setup).run(trace)
        assert first.frame_cycles == second.frame_cycles
        assert np.array_equal(first.image.color, second.image.color)
        totals_a = first.stats.stage_cycle_totals()
        totals_b = second.stats.stage_cycle_totals()
        assert totals_a == totals_b

    def test_gpupd_traffic_exactly_repeats(self):
        setup = make_setup("tiny", num_gpus=4)
        trace = load_benchmark("wolf", "tiny")
        first = build_scheme("gpupd", setup).run(trace)
        second = build_scheme("gpupd", setup).run(trace)
        assert first.stats.traffic_total() == second.stats.traffic_total()
        assert first.frame_cycles == second.frame_cycles


class TestFaultDeterminism:
    def test_faulty_run_exactly_repeats_with_cold_caches(self):
        from repro.faults import FaultPlan, GPUFailure
        plan = FaultPlan(seed=21, drop_probability=0.01,
                         corrupt_probability=0.005, retry_budget=64,
                         gpu_failures=(GPUFailure(gpu=3, cycle=60000.0),))
        setup = make_setup("tiny", num_gpus=8, faults=plan)
        trace = load_benchmark("wolf", "tiny")
        first = build_scheme("chopin+sched", setup).run(trace)
        render_service().reset()  # fully cold: geometry, reference, prep
        second = build_scheme("chopin+sched", setup).run(trace)
        assert first.frame_cycles == second.frame_cycles
        assert first.stats.link_retries == second.stats.link_retries
        assert first.stats.backoff_cycles == second.stats.backoff_cycles
        assert first.stats.redistributed_draws \
            == second.stats.redistributed_draws
        assert first.stats.recovery_cycles == second.stats.recovery_cycles
        assert np.array_equal(first.image.color, second.image.color)
