"""Timeline recording and ASCII Gantt rendering."""

import pytest

from repro.harness import build_scheme, make_setup
from repro.stats import STAGE_COMPOSITION, STAGE_FRAGMENT, STAGE_GEOMETRY
from repro.timing.timeline import (Span, TimelineRecorder, current,
                                   record_timeline)
from repro.traces import load_benchmark


class TestRecorder:
    def test_inactive_by_default(self):
        assert current() is None

    def test_context_activates_and_restores(self):
        with record_timeline() as recorder:
            assert current() is recorder
            with record_timeline() as inner:
                assert current() is inner
            assert current() is recorder
        assert current() is None

    def test_zero_length_spans_dropped(self):
        recorder = TimelineRecorder()
        recorder.record("gpu0", STAGE_GEOMETRY, 5.0, 5.0)
        assert recorder.spans == []

    def test_busy_time_merges_overlaps(self):
        recorder = TimelineRecorder()
        recorder.record("gpu0", STAGE_GEOMETRY, 0, 10)
        recorder.record("gpu0", STAGE_FRAGMENT, 5, 15)
        assert recorder.busy_time("gpu0") == 15.0

    def test_utilization(self):
        recorder = TimelineRecorder()
        recorder.record("gpu0", STAGE_GEOMETRY, 0, 25)
        recorder.record("gpu1", STAGE_GEOMETRY, 0, 100)
        assert recorder.utilization("gpu0") == pytest.approx(0.25)
        assert recorder.utilization("gpu1") == pytest.approx(1.0)

    def test_lanes_sorted_numerically(self):
        recorder = TimelineRecorder()
        for lane in ("gpu10", "gpu2", "gpu1"):
            recorder.record(lane, STAGE_GEOMETRY, 0, 1)
        assert recorder.lanes() == ["gpu1", "gpu2", "gpu10"]


class TestRendering:
    def test_empty_timeline(self):
        assert TimelineRecorder().render() == "(empty timeline)"

    def test_glyphs_and_idle(self):
        recorder = TimelineRecorder()
        recorder.record("gpu0", STAGE_GEOMETRY, 0, 50)
        recorder.record("gpu0", STAGE_COMPOSITION, 80, 100)
        text = recorder.render(width=10, show_legend=False)
        row = text.split("|")[1]
        assert row == "GGGGG...CC"

    def test_dominant_stage_wins_cell(self):
        recorder = TimelineRecorder()
        recorder.record("gpu0", STAGE_GEOMETRY, 0, 9)
        recorder.record("gpu0", STAGE_FRAGMENT, 9, 10)
        text = recorder.render(width=1, show_legend=False)
        assert "|G|" in text

    def test_legend_present(self):
        recorder = TimelineRecorder()
        recorder.record("gpu0", STAGE_GEOMETRY, 0, 10)
        text = recorder.render(width=20)
        assert "G=geometry" in text
        assert "cycles" in text

    def test_lane_filter(self):
        recorder = TimelineRecorder()
        recorder.record("gpu0", STAGE_GEOMETRY, 0, 10)
        recorder.record("gpu1", STAGE_GEOMETRY, 0, 10)
        text = recorder.render(width=10, lanes=["gpu1"],
                               show_legend=False)
        assert "gpu0" not in text and "gpu1" in text


class TestSchemeIntegration:
    def test_chopin_run_produces_spans(self):
        setup = make_setup("tiny", num_gpus=4)
        trace = load_benchmark("wolf", "tiny")
        with record_timeline() as recorder:
            result = build_scheme("chopin+sched", setup).run(trace)
        stages = {span.stage for span in recorder.spans}
        assert STAGE_GEOMETRY in stages
        assert STAGE_FRAGMENT in stages
        assert STAGE_COMPOSITION in stages
        assert "transfer" in stages
        assert recorder.end_time == pytest.approx(result.frame_cycles,
                                                  rel=0.01)
        # per-lane busy time agrees with the engine-stage stats
        for gpu in range(4):
            geometry = sum(s.duration for s in recorder.spans
                           if s.lane == f"gpu{gpu}"
                           and s.stage == STAGE_GEOMETRY)
            assert geometry == pytest.approx(
                result.stats.gpus[gpu].stage_cycles[STAGE_GEOMETRY],
                rel=1e-6)

    def test_recording_does_not_change_timing(self):
        setup = make_setup("tiny", num_gpus=4)
        trace = load_benchmark("wolf", "tiny")
        plain = build_scheme("chopin+sched", setup).run(trace)
        with record_timeline():
            recorded = build_scheme("chopin+sched", setup).run(trace)
        assert plain.frame_cycles == recorded.frame_cycles
