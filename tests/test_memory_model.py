"""Per-scheme memory-footprint model."""

import pytest

from repro.core.memory import (chopin_memory, duplication_memory,
                               gpupd_memory, memory_comparison,
                               sort_middle_memory)
from repro.harness import make_setup
from repro.traces import load_benchmark


@pytest.fixture(scope="module")
def setup():
    return make_setup("tiny", num_gpus=8)


@pytest.fixture(scope="module")
def trace():
    return load_benchmark("cod2", "tiny")


class TestFootprints:
    def test_duplication_scales_with_surfaces(self, trace, setup):
        footprint = duplication_memory(trace, setup.config)
        per_surface = trace.width * trace.height * 8
        assert footprint.surfaces % per_surface == 0
        assert footprint.surfaces >= per_surface
        assert footprint.total == footprint.surfaces

    def test_ordered_gpupd_buffers_are_small(self):
        # the §III-A argument is about paper-sized workloads: unordered
        # exchange must buffer every frame primitive's ID for reordering
        setup = make_setup("paper", num_gpus=8)
        trace = load_benchmark("cod2", "paper")
        ordered = gpupd_memory(trace, setup.config, ordered=True)
        unordered = gpupd_memory(trace, setup.config, ordered=False)
        assert unordered.reorder > 5 * ordered.staging
        assert ordered.reorder == 0

    def test_chopin_extra_target_only_with_transparency(self, setup):
        trace = load_benchmark("cod2", "tiny")  # has transparent draws
        footprint = chopin_memory(trace, setup.config)
        assert footprint.extra_targets == trace.width * trace.height * 4

    def test_chopin_staging_shrinks_with_gpus(self, trace):
        few = chopin_memory(trace, make_setup("tiny", num_gpus=2).config)
        many = chopin_memory(trace, make_setup("tiny", num_gpus=8).config)
        assert many.staging < few.staging

    def test_sort_middle_staging_dwarfs_gpupd(self, trace, setup):
        middle = sort_middle_memory(trace, setup.config)
        gpupd = gpupd_memory(trace, setup.config, ordered=True)
        assert middle.staging > 10 * gpupd.staging

    def test_comparison_covers_all_schemes(self, trace, setup):
        table = memory_comparison(trace, setup.config)
        assert set(table) == {"duplication", "gpupd", "gpupd-unordered",
                              "sort-middle", "chopin"}
        for footprint in table.values():
            assert footprint.total > 0
            assert footprint.as_dict()["total"] == footprint.total
