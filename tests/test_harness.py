"""Experiment harness: setups, caching, experiments, report rendering."""

import pytest

from repro.errors import ConfigError
from repro.harness import (MAIN_SCHEMES, SCHEMES, build_scheme, compare,
                           make_setup, run_benchmark)
from repro.harness import experiments as E
from repro.harness import report as R
from repro.harness.runner import clear_result_cache

SUBSET = ("cod2",)


class TestSetup:
    def test_scales_table2_knobs(self):
        setup = make_setup("tiny", num_gpus=8)
        assert setup.config.tile_size == 16
        assert setup.config.composition_threshold == 64
        assert setup.config.primitive_id_bytes == 16
        assert setup.gpupd_batch == 32

    def test_paper_scale_identity(self):
        setup = make_setup("paper")
        assert setup.config.tile_size == 64
        assert setup.config.composition_threshold == 4096
        assert setup.costs.draw_issue_cost == 50.0

    def test_interval_scaling(self):
        setup = make_setup("tiny", scheduler_update_interval=1024)
        assert setup.config.scheduler_update_interval == 16
        minimal = make_setup("tiny", scheduler_update_interval=1)
        assert minimal.config.scheduler_update_interval == 1

    def test_link_overrides(self):
        setup = make_setup("tiny", bandwidth_gb_per_s=16.0,
                           latency_cycles=400)
        assert setup.config.link.bandwidth_gb_per_s == 16.0
        assert setup.config.link.latency_cycles == 400

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigError):
            build_scheme("nonsense", make_setup("tiny"))

    def test_registry_covers_paper_bars(self):
        assert set(MAIN_SCHEMES) <= set(SCHEMES)
        assert "duplication" in SCHEMES and "chopin-rr" in SCHEMES


class TestRunner:
    def test_run_cached(self):
        clear_result_cache()
        setup = make_setup("tiny")
        first = run_benchmark("duplication", "cod2", setup)
        second = run_benchmark("duplication", "cod2", setup)
        assert first is second

    def test_different_configs_not_conflated(self):
        fast = run_benchmark("chopin+sched", "cod2", make_setup("tiny"))
        slow = run_benchmark(
            "chopin+sched", "cod2",
            make_setup("tiny", bandwidth_gb_per_s=1.0))
        assert slow.frame_cycles > fast.frame_cycles

    def test_compare_includes_baseline(self):
        speedups = compare("cod2", make_setup("tiny"),
                           schemes=("chopin+sched",))
        assert speedups["duplication"] == 1.0
        assert speedups["chopin+sched"] > 0


class TestExperiments:
    def test_table2(self):
        table = E.table2_config()
        assert table["Number of GPUs"] == "8"
        assert table["Inter-GPU bandwidth"] == "64 GB/s"

    def test_table3_rows(self):
        rows = E.table3_benchmarks()
        assert len(rows) == 8
        cod2 = next(r for r in rows if r["benchmark"] == "cod2")
        assert cod2["paper_triangles"] == 219_950

    def test_fig2_shares_grow(self):
        shares = E.fig2_geometry_share(benchmarks=SUBSET,
                                       gpu_counts=(1, 8))
        assert shares["cod2"][1] < shares["cod2"][8]

    def test_fig4_overheads_grow_with_gpus(self):
        overheads = E.fig4_gpupd_overheads(benchmarks=SUBSET,
                                           gpu_counts=(2, 8))
        assert overheads["cod2"][8]["distribution"] \
            > overheads["cod2"][2]["distribution"]

    def test_fig13_has_gmean_row(self):
        table = E.fig13_performance(benchmarks=SUBSET)
        assert "GMean" in table
        assert set(table["cod2"]) == set(MAIN_SCHEMES)

    def test_fig15_chopin_passes_more(self):
        table = E.fig15_depth_test(benchmarks=SUBSET)
        assert table["cod2"]["duplication"]["total"] == pytest.approx(1.0)
        assert table["cod2"]["chopin+sched"]["total"] >= 1.0

    def test_fig16_monotone_degradation(self):
        rows = E.fig16_culling_sensitivity(benchmark="cod2",
                                           retained=(0.0, 0.4))
        assert rows[0]["speedup"] > rows[1]["speedup"]
        assert rows[1]["extra_fragments"] > rows[0]["extra_fragments"]

    def test_fig17_reports_all_plus_average(self):
        traffic = E.fig17_traffic(benchmarks=SUBSET)
        assert traffic["cod2"] > 0
        assert "Avg" in traffic

    def test_fig22_coverage_shrinks_with_threshold(self):
        table = E.fig22_coverage(benchmarks=SUBSET,
                                 thresholds=(4096, 16384))
        assert table[16384]["triangle_coverage"] \
            <= table[4096]["triangle_coverage"]

    def test_sec6g_primitive_share_grows(self):
        rows = E.sec6g_workload_trend(benchmark="cod2",
                                      detail_factors=(1.0, 4.0))
        assert rows[1]["primitive_share"] > rows[0]["primitive_share"]

    def test_fig9_rows_and_correlation(self):
        rows = E.fig9_triangle_rate(benchmark="cod2")
        assert all(r["pipeline_rate"] >= r["geometry_rate"] for r in rows)
        assert E.fig9_correlation(benchmark="cod2") > 0.2


class TestReport:
    def test_render_table_alignment(self):
        text = R.render_table(["a", "bb"], [[1, 2.5], [10, 0.125]], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_fig2(self):
        text = R.render_fig2({"cod2": {1: 0.25, 8: 0.6}})
        assert "25.0%" in text and "60.0%" in text

    def test_render_speedups(self):
        text = R.render_speedups({"cod2": {"chopin": 1.25}}, "Fig 13")
        assert "1.250" in text

    def test_render_fig16(self):
        text = R.render_fig16([{"retained_fraction": 0.1, "speedup": 1.2,
                                "extra_fragments": 0.07}])
        assert "10%" in text and "7.0%" in text

    def test_render_dict(self):
        text = R.render_dict({"k": 3}, "D")
        assert "k" in text and "3" in text

    def test_render_fig9_truncates(self):
        rows = [{"draw": i, "triangles": 3, "geometry_rate": 1.0,
                 "pipeline_rate": 2.0} for i in range(30)]
        text = R.render_fig9(rows, max_rows=5)
        assert "more draws" in text
