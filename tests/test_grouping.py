"""Composition-group splitting (§IV-A boundary events)."""

import numpy as np
import pytest

from repro.core import (BOUNDARY_BLEND_OP, BOUNDARY_DEPTH_FUNC,
                        BOUNDARY_DEPTH_WRITE, BOUNDARY_TARGET,
                        CompositionGroup, boundary_reason, split_into_groups)
from repro.errors import SchedulingError
from repro.geometry import BlendOp, DepthFunc, DrawCommand, RenderState
from repro.traces.trace import Frame


def draw(draw_id, tris=4, **state_kwargs):
    positions = np.random.default_rng(draw_id).random((tris, 3, 3),
                                                      dtype=np.float32)
    colors = np.ones((tris, 3, 4), dtype=np.float32)
    return DrawCommand(draw_id=draw_id, positions=positions, colors=colors,
                       state=RenderState(**state_kwargs))


class TestBoundaryReason:
    def test_same_state_no_boundary(self):
        assert boundary_reason(draw(0), draw(1)) is None

    def test_render_target_switch(self):
        assert boundary_reason(draw(0), draw(1, render_target=1)) \
            == BOUNDARY_TARGET

    def test_depth_buffer_switch(self):
        assert boundary_reason(draw(0), draw(1, depth_buffer=1)) \
            == BOUNDARY_TARGET

    def test_depth_write_toggle(self):
        assert boundary_reason(draw(0), draw(1, depth_write=False)) \
            == BOUNDARY_DEPTH_WRITE

    def test_depth_func_change(self):
        assert boundary_reason(
            draw(0), draw(1, depth_func=DepthFunc.LEQUAL)) \
            == BOUNDARY_DEPTH_FUNC

    def test_blend_op_change(self):
        assert boundary_reason(
            draw(0), draw(1, blend_op=BlendOp.OVER, depth_write=False)) \
            == BOUNDARY_DEPTH_WRITE  # depth-write differs first (event 3)

    def test_blend_only_change(self):
        prev = draw(0, depth_write=False)
        nxt = draw(1, depth_write=False, blend_op=BlendOp.OVER)
        assert boundary_reason(prev, nxt) == BOUNDARY_BLEND_OP


class TestSplitting:
    def test_uniform_frame_single_group(self):
        frame = Frame(draws=[draw(i) for i in range(5)])
        groups = split_into_groups(frame)
        assert len(groups) == 1
        assert groups[0].num_draws == 5

    def test_split_at_every_event(self):
        frame = Frame(draws=[
            draw(0), draw(1),
            draw(2, render_target=1, depth_buffer=1),
            draw(3, render_target=1, depth_buffer=1, depth_write=False),
            draw(4),
            draw(5, depth_func=DepthFunc.LEQUAL),
            draw(6, blend_op=BlendOp.OVER, depth_write=False),
        ])
        groups = split_into_groups(frame)
        assert [g.num_draws for g in groups] == [2, 1, 1, 1, 1, 1]
        assert groups[1].boundary_reason == BOUNDARY_TARGET
        assert groups[2].boundary_reason == BOUNDARY_DEPTH_WRITE

    def test_group_properties_reflect_first_draw(self):
        frame = Frame(draws=[draw(0, blend_op=BlendOp.ADDITIVE,
                                  depth_write=False)])
        group = split_into_groups(frame)[0]
        assert group.transparent
        assert group.blend_op is BlendOp.ADDITIVE
        assert not group.depth_write

    def test_triangle_count_totals(self):
        frame = Frame(draws=[draw(0, tris=3), draw(1, tris=7)])
        assert split_into_groups(frame)[0].num_triangles == 10

    def test_empty_frame_gives_no_groups(self):
        assert split_into_groups(Frame()) == []

    def test_groups_partition_frame_in_order(self, micro_trace):
        groups = split_into_groups(micro_trace.frame)
        flattened = [d for g in groups for d in g.draws]
        assert flattened == micro_trace.frame.draws

    def test_validate_catches_mixed_state(self):
        group = CompositionGroup(index=0, draws=[draw(0),
                                                 draw(1, render_target=1)])
        with pytest.raises(SchedulingError):
            group.validate()

    def test_validate_rejects_empty_group(self):
        with pytest.raises(SchedulingError):
            CompositionGroup(index=0, draws=[]).validate()
