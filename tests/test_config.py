"""Configuration (Table II) validation and derived quantities."""

import pytest

from repro.config import GIGA, GPUConfig, LinkConfig, SystemConfig, TABLE2
from repro.errors import ConfigError
from repro.faults import DegradedWindow, FaultPlan, GPUFailure


class TestGPUConfig:
    def test_defaults_match_table2(self):
        gpu = GPUConfig()
        assert gpu.num_sms == 8
        assert gpu.num_rops == 8
        assert gpu.shader_cores_per_sm == 32
        assert gpu.frequency_hz == GIGA

    def test_rejects_zero_sms(self):
        with pytest.raises(ConfigError):
            GPUConfig(num_sms=0)

    def test_rejects_negative_frequency(self):
        with pytest.raises(ConfigError):
            GPUConfig(frequency_hz=-1)


class TestLinkConfig:
    def test_default_bandwidth_bytes_per_cycle(self):
        link = LinkConfig()
        assert link.bandwidth_bytes_per_cycle(GIGA) == pytest.approx(64.0)

    def test_transfer_cycles_includes_latency(self):
        link = LinkConfig(bandwidth_gb_per_s=64.0, latency_cycles=200)
        assert link.transfer_cycles(6400) == pytest.approx(200 + 100)

    def test_ideal_link_is_free(self):
        link = LinkConfig(ideal=True)
        assert link.transfer_cycles(10**9) == 0.0
        assert link.bandwidth_bytes_per_cycle() == float("inf")

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ConfigError):
            LinkConfig(bandwidth_gb_per_s=0.0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            LinkConfig(latency_cycles=-5)


class TestSystemConfig:
    def test_table2_defaults(self):
        assert TABLE2.num_gpus == 8
        assert TABLE2.composition_threshold == 4096
        assert TABLE2.tile_size == 64
        assert TABLE2.link.bandwidth_gb_per_s == 64.0
        assert TABLE2.link.latency_cycles == 200

    def test_with_gpus_copies(self):
        other = TABLE2.with_gpus(16)
        assert other.num_gpus == 16
        assert TABLE2.num_gpus == 8

    def test_with_link_partial_override(self):
        other = TABLE2.with_link(latency_cycles=400)
        assert other.link.latency_cycles == 400
        assert other.link.bandwidth_gb_per_s == TABLE2.link.bandwidth_gb_per_s

    def test_idealized_keeps_structure(self):
        ideal = TABLE2.idealized()
        assert ideal.link.ideal
        assert ideal.num_gpus == TABLE2.num_gpus

    def test_rejects_zero_gpus(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_gpus=0)

    def test_rejects_bad_retained_fraction(self):
        with pytest.raises(ConfigError):
            SystemConfig(retained_cull_fraction=1.5)

    def test_rejects_zero_update_interval(self):
        with pytest.raises(ConfigError):
            SystemConfig(scheduler_update_interval=0)


class TestFaultPlanValidation:
    def test_rejects_probability_out_of_range(self):
        with pytest.raises(ConfigError):
            FaultPlan(drop_probability=-0.1)
        with pytest.raises(ConfigError):
            FaultPlan(corrupt_probability=1.5)

    def test_rejects_probability_sum_above_one(self):
        with pytest.raises(ConfigError):
            FaultPlan(drop_probability=0.6, corrupt_probability=0.6)
        FaultPlan(drop_probability=0.5, corrupt_probability=0.5)  # boundary ok

    def test_rejects_negative_retry_budget(self):
        with pytest.raises(ConfigError):
            FaultPlan(retry_budget=-1)

    def test_rejects_negative_backoff_and_detect(self):
        with pytest.raises(ConfigError):
            FaultPlan(backoff_base_cycles=-1.0)
        with pytest.raises(ConfigError):
            FaultPlan(drop_detection_cycles=-1.0)

    def test_rejects_bad_failure_entries(self):
        with pytest.raises(ConfigError):
            GPUFailure(gpu=-1, cycle=100.0)
        with pytest.raises(ConfigError):
            GPUFailure(gpu=2, cycle=-1.0)
        with pytest.raises(ConfigError, match="fail-stops twice"):
            FaultPlan(gpu_failures=(GPUFailure(gpu=2, cycle=10.0),
                                    GPUFailure(gpu=2, cycle=20.0)))

    def test_rejects_bad_degraded_window(self):
        with pytest.raises(ConfigError):
            DegradedWindow(start=100, end=100, bandwidth_factor=0.5)
        with pytest.raises(ConfigError):
            DegradedWindow(start=0, end=100, bandwidth_factor=0.0)
        with pytest.raises(ConfigError):
            DegradedWindow(start=0, end=100, bandwidth_factor=1.5)
        with pytest.raises(ConfigError):
            DegradedWindow(start=-1, end=100, bandwidth_factor=0.5)

    def test_system_config_checks_plan_against_gpu_count(self):
        plan = FaultPlan(gpu_failures=(GPUFailure(gpu=7, cycle=100.0),))
        SystemConfig(num_gpus=8, faults=plan)
        with pytest.raises(ConfigError, match="only has 4 GPUs"):
            SystemConfig(num_gpus=4, faults=plan)

    def test_system_config_rejects_killing_all_gpus(self):
        plan = FaultPlan(gpu_failures=tuple(
            GPUFailure(gpu=g, cycle=100.0) for g in range(2)))
        with pytest.raises(ConfigError, match="no survivors"):
            SystemConfig(num_gpus=2, faults=plan)
