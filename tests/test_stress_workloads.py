"""Stress/future workload generators."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.harness import make_setup, run
from repro.traces import STRESS_WORKLOADS, load_stress
from repro.traces.stress import micro_triangle


class TestGenerators:
    def test_all_workloads_generate_and_validate(self):
        for name in STRESS_WORKLOADS:
            trace = load_stress(name)
            trace.validate()
            assert trace.num_draws > 0

    def test_cached(self):
        assert load_stress("micro-triangle") is load_stress("micro-triangle")

    def test_unknown_rejected(self):
        with pytest.raises(TraceError):
            load_stress("impossible")

    def test_detail_scales_triangles(self):
        base = micro_triangle(detail=1.0)
        fine = micro_triangle(detail=4.0)
        assert fine.num_triangles == pytest.approx(4 * base.num_triangles,
                                                   rel=0.01)
        assert fine.width == base.width  # resolution pinned

    def test_detail_below_one_rejected(self):
        with pytest.raises(TraceError):
            micro_triangle(detail=0.5)

    def test_transparency_heavy_fraction(self):
        trace = load_stress("transparency-heavy")
        transparent = sum(1 for d in trace.frame.draws if d.transparent)
        assert transparent / trace.num_draws > 0.25

    def test_many_groups_has_many_groups(self):
        from repro.core import split_into_groups
        dense = split_into_groups(load_stress("many-groups").frame)
        sparse = split_into_groups(load_stress("fragment-bound").frame)
        assert len(dense) > 2 * len(sparse)


class TestSchemesOnStress:
    @pytest.mark.parametrize("name", sorted(STRESS_WORKLOADS))
    def test_image_correct_under_stress(self, name):
        setup = make_setup("tiny", num_gpus=8)
        trace = load_stress(name)
        dup = run("duplication", trace, setup)
        chopin = run("chopin+sched", trace, setup)
        assert np.abs(dup.image.color - chopin.image.color).max() < 3e-3

    def test_micro_triangle_favours_sort_last(self):
        setup = make_setup("tiny", num_gpus=8)
        trace = load_stress("micro-triangle")
        dup = run("duplication", trace, setup)
        chopin = run("chopin+sched", trace, setup)
        assert dup.frame_cycles / chopin.frame_cycles > 1.2
