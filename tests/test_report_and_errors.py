"""Report rendering corners and the exception hierarchy."""

import pytest

from repro import errors
from repro.harness import report as R


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in ("ConfigError", "SimulationError", "PipelineError",
                     "CompositionError", "SchedulingError", "TraceError"):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.TraceError("boom")

    def test_distinct_branches(self):
        assert not issubclass(errors.TraceError, errors.ConfigError)


class TestRenderTable:
    def test_empty_rows(self):
        text = R.render_table(["a"], [])
        assert "a" in text
        assert len(text.splitlines()) == 2  # header + rule

    def test_wide_cells_stretch_columns(self):
        text = R.render_table(["x"], [["a-very-long-cell-value"]])
        header, rule, row = text.splitlines()
        assert len(rule) >= len("a-very-long-cell-value")

    def test_mixed_types(self):
        text = R.render_table(["k", "v"], [["name", 1.23456], ["n", 7]])
        assert "1.235" in text
        assert "7" in text

    def test_title_on_first_line(self):
        assert R.render_table(["a"], [[1]], "TITLE") \
            .splitlines()[0] == "TITLE"


class TestKeyedMatrix:
    def test_union_of_columns(self):
        data = {"r1": {"a": 1.0}, "r2": {"b": 2.0}}
        text = R.render_keyed_matrix(data, "row")
        assert "a" in text and "b" in text
        # missing cells render empty, not crash
        assert "r1" in text and "r2" in text

    def test_percent_mode(self):
        text = R.render_keyed_matrix({"r": {"c": 0.256}}, "row",
                                     percent=True)
        assert "25.6%" in text

    def test_column_order_is_first_seen(self):
        data = {"r1": {"z": 1.0, "a": 2.0}}
        header = R.render_keyed_matrix(data, "row").splitlines()[0]
        assert header.index("z") < header.index("a")


class TestFigureRenderers:
    def test_fig14_skips_zero_stages(self):
        table = {"bench": {"scheme": {"geometry": 0.5, "sync": 0.0}}}
        text = R.render_fig14(table)
        assert "geometry" in text
        assert "sync" not in text.split("[bench]")[1]

    def test_fig17_includes_average_row(self):
        text = R.render_fig17({"cod2": 22.8, "Avg": 59.0})
        assert "Avg" in text

    def test_render_sweep_passthrough(self):
        text = R.render_sweep({16: {"chopin": 1.0}}, "GB/s", "T")
        assert "GB/s" in text and "chopin" in text

    def test_render_table3_columns(self):
        rows = [{"benchmark": "cod2", "paper_resolution": "640 x 480",
                 "paper_draws": 1005, "paper_triangles": 219950,
                 "run_resolution": "160 x 120", "run_draws": 251,
                 "run_triangles": 3436}]
        text = R.render_table3(rows)
        assert "cod2" in text and "219950" in text
