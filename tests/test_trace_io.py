"""Trace serialization round-trip and format robustness."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces import load_benchmark
from repro.traces.io import FORMAT_VERSION, load_trace, save_trace


class TestRoundTrip:
    def test_micro_trace_exact(self, micro_trace, tmp_path):
        path = tmp_path / "micro.npz"
        save_trace(micro_trace, path)
        loaded = load_trace(path)
        assert loaded.name == micro_trace.name
        assert loaded.width == micro_trace.width
        assert loaded.num_draws == micro_trace.num_draws
        assert loaded.num_triangles == micro_trace.num_triangles
        for original, copy in zip(micro_trace.frame.draws,
                                  loaded.frame.draws):
            assert np.array_equal(original.positions, copy.positions)
            assert np.array_equal(original.colors, copy.colors)
            assert original.state == copy.state
            assert original.vertex_cost == copy.vertex_cost
            assert original.texture_id == copy.texture_id

    def test_benchmark_trace_round_trip(self, tmp_path):
        trace = load_benchmark("wolf", "tiny")
        path = tmp_path / "wolf.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.num_triangles == trace.num_triangles
        ops = [(d.state.blend_op, d.state.depth_func)
               for d in trace.frame.draws]
        loaded_ops = [(d.state.blend_op, d.state.depth_func)
                      for d in loaded.frame.draws]
        assert ops == loaded_ops

    def test_loaded_trace_renders_identically(self, micro_trace, tmp_path,
                                              micro_setup):
        from repro.sfr import render_reference_image
        path = tmp_path / "micro.npz"
        save_trace(micro_trace, path)
        loaded = load_trace(path)
        original = render_reference_image(micro_trace, micro_setup.config)
        reloaded = render_reference_image(loaded, micro_setup.config)
        assert np.array_equal(original.color, reloaded.color)

    def test_scalar_metadata_preserved(self, micro_trace, tmp_path):
        micro_trace.metadata["note"] = "hello"
        micro_trace.metadata["unpicklable"] = object()  # silently dropped
        path = tmp_path / "m.npz"
        save_trace(micro_trace, path)
        loaded = load_trace(path)
        assert loaded.metadata["note"] == "hello"
        assert "unpicklable" not in loaded.metadata


class TestRobustness:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "nope.npz")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_npz_without_header(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(TraceError):
            load_trace(path)

    def test_wrong_version_rejected(self, micro_trace, tmp_path,
                                    monkeypatch):
        import repro.traces.io as io_module
        path = tmp_path / "m.npz"
        monkeypatch.setattr(io_module, "FORMAT_VERSION", FORMAT_VERSION + 1)
        save_trace(micro_trace, path)
        monkeypatch.undo()
        with pytest.raises(TraceError):
            load_trace(path)
