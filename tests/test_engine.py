"""The resilient experiment engine: fingerprints, supervision, journal."""

import json
import pathlib
import subprocess
import sys

import pytest

from repro.errors import (ConfigError, HarnessError, RetryBudgetExhausted,
                          SimulationError)
from repro.harness import runner
from repro.harness.engine import (Engine, Journal, JobSpec, benchmark_job,
                                  result_from_payload, spec_for_setup)
from repro.harness.report import render_engine_summary, render_sweep
from repro.harness.sweeps import FAILED, sweep

BENCH = ("wolf",)


class TestFingerprint:
    def test_stable_within_process(self):
        a = benchmark_job("chopin+sched", "wolf", num_gpus=4)
        b = benchmark_job("chopin+sched", "wolf", num_gpus=4)
        assert a.fingerprint == b.fingerprint

    def test_stable_across_processes(self):
        """The journal key must mean the same thing in a fresh interpreter
        (that is what makes --resume correct across runs)."""
        spec = benchmark_job("chopin+sched", "wolf", num_gpus=4,
                             bandwidth_gb_per_s=32.0)
        src = pathlib.Path(__file__).resolve().parents[1] / "src"
        script = (
            f"import sys; sys.path.insert(0, {str(src)!r})\n"
            "from repro.harness.engine import benchmark_job\n"
            "print(benchmark_job('chopin+sched', 'wolf', num_gpus=4,\n"
            "                    bandwidth_gb_per_s=32.0).fingerprint)\n")
        out = subprocess.run([sys.executable, "-c", script],
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == spec.fingerprint

    def test_sensitive_to_every_axis(self):
        base = benchmark_job("chopin+sched", "wolf", num_gpus=4)
        assert benchmark_job("chopin", "wolf", num_gpus=4) \
            .fingerprint != base.fingerprint
        assert benchmark_job("chopin+sched", "cod2", num_gpus=4) \
            .fingerprint != base.fingerprint
        assert benchmark_job("chopin+sched", "wolf", num_gpus=8) \
            .fingerprint != base.fingerprint
        assert benchmark_job("chopin+sched", "wolf", num_gpus=4, seed=1) \
            .fingerprint != base.fingerprint

    def test_matches_setup_origin_path(self):
        """Specs built from kwargs and from a live Setup agree — the
        property baseline deduplication relies on."""
        setup = runner.make_setup("tiny", num_gpus=4)
        assert spec_for_setup("gpupd", "wolf", setup).fingerprint \
            == benchmark_job("gpupd", "wolf", num_gpus=4).fingerprint

    def test_hand_built_setups_are_not_portable(self):
        setup = runner.make_setup("tiny", num_gpus=4)
        modified = setup.replace_config(composition_threshold=7)
        assert spec_for_setup("gpupd", "wolf", modified) is None

    def test_json_round_trip(self):
        spec = benchmark_job("chopin+sched", "wolf", num_gpus=4)
        clone = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone.fingerprint == spec.fingerprint


class TestSupervision:
    def test_timeout_retry_budget_exhaustion(self):
        eng = Engine(timeout=0.3, retries=1, backoff=0.0)
        out = eng.run_job(JobSpec(kind="sleep", params=(("seconds", 30.0),)))
        assert out.status == "failed"
        assert out.error == "JobTimeout"
        assert out.attempts == 2  # initial try + 1 retry
        assert out.timeouts == 2
        assert eng.counters.timeouts == 2
        with pytest.raises(RetryBudgetExhausted) as excinfo:
            out.result()
        assert excinfo.value.attempts == 2
        assert excinfo.value.last_error == "JobTimeout"

    def test_worker_death_is_transient(self):
        eng = Engine(retries=2, backoff=0.0, isolate=True)
        out = eng.run_job(JobSpec(kind="crash"))
        assert out.status == "failed"
        assert out.error == "WorkerCrashed"
        assert out.attempts == 3
        assert eng.counters.crashes == 3

    def test_deterministic_error_never_retries(self):
        eng = Engine(retries=5, backoff=0.0, isolate=True)
        out = eng.run_job(JobSpec(kind="fail",
                                  params=(("message", "broken config"),)))
        assert out.status == "failed"
        assert out.error == "SimulationError"
        assert out.attempts == 1
        assert out.retries == 0

    def test_flaky_job_recovers_within_budget(self, tmp_path):
        eng = Engine(retries=2, backoff=0.0, isolate=True)
        out = eng.run_job(JobSpec(kind="flaky", params=(
            ("counter", str(tmp_path / "flaky")), ("fail_times", 2))))
        assert out.status == "ok"
        assert out.retries == 2
        assert eng.counters.completed == 1

    def test_backoff_is_exponential_and_capped(self):
        delays = []
        eng = Engine(retries=3, backoff=0.5, backoff_cap=1.5, isolate=True)
        eng._sleep = delays.append
        eng.run_job(JobSpec(kind="crash"))
        assert delays == [0.5, 1.0, 1.5]

    def test_invalid_engine_parameters_rejected(self):
        with pytest.raises(ConfigError):
            Engine(jobs=0)
        with pytest.raises(ConfigError):
            Engine(timeout=-1.0)
        with pytest.raises(ConfigError):
            Engine(retries=-1)


class TestJournalResume:
    def test_resume_skips_completed_jobs(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        spec = benchmark_job("chopin+sched", "wolf", num_gpus=2)
        first = Engine(journal=journal)
        out = first.run_job(spec)
        first.close()
        assert out.ok and not out.resumed

        second = Engine(resume=journal)
        replay = second.run_job(spec)
        assert replay.resumed
        assert second.counters.resumed == 1
        assert second.counters.jobs == 0  # nothing simulated
        assert replay.payload["stats"]["frame_cycles"] \
            == out.payload["stats"]["frame_cycles"]
        # the replayed result carries its provenance in the stats
        assert replay.result().stats.job_resumed is True

    def test_failed_entries_get_a_fresh_chance(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        eng = Engine(journal=journal, retries=0, isolate=True)
        eng.run_job(JobSpec(kind="fail"))
        eng.close()
        resumed = Engine(resume=journal, retries=0, isolate=True)
        assert resumed.counters.resumed == 0  # not pre-loaded
        out = resumed.run_job(JobSpec(kind="fail"))
        assert out.attempts == 1  # actually re-ran

    def test_torn_final_line_tolerated(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        spec = benchmark_job("chopin+sched", "wolf", num_gpus=2)
        eng = Engine(journal=journal)
        eng.run_job(spec)
        eng.close()
        with open(journal, "a") as handle:  # simulate a mid-write SIGKILL
            handle.write('{"fingerprint": "deadbeef", "status": "o')
        entries = Journal.load(journal)
        assert spec.fingerprint in entries
        assert "deadbeef" not in entries
        assert Engine(resume=journal).counters.resumed == 0

    def test_missing_journal_is_a_harness_error(self, tmp_path):
        with pytest.raises(HarnessError):
            Engine(resume=tmp_path / "absent.jsonl")


class TestDeterminism:
    def test_serial_vs_parallel_bit_identical(self):
        """--jobs 1 (in-process) and --jobs N (subprocess workers) must
        produce the same table bit-for-bit."""
        kwargs = dict(schemes=("chopin+sched", "gpupd"), benchmarks=BENCH)
        serial = sweep("num_gpus", [2, 4], engine=Engine(jobs=1), **kwargs)
        parallel = sweep("num_gpus", [2, 4], engine=Engine(jobs=3), **kwargs)
        assert serial == parallel  # exact float equality, not approx

    def test_payload_round_trip_preserves_stats(self):
        setup = runner.make_setup("tiny", num_gpus=2)
        direct = runner.run_benchmark_direct("chopin+sched", "wolf", setup)
        eng = Engine(isolate=True)
        out = eng.run_job(benchmark_job("chopin+sched", "wolf", num_gpus=2))
        rebuilt = result_from_payload(out.payload)
        assert rebuilt.frame_cycles == direct.frame_cycles
        assert rebuilt.stats.stage_cycle_totals() \
            == direct.stats.stage_cycle_totals()
        assert rebuilt.stats.traffic_total() == direct.stats.traffic_total()
        assert rebuilt.stats.total_fragments_passed \
            == direct.stats.total_fragments_passed


class TestPartialResults:
    def test_failed_cells_render(self, monkeypatch):
        direct = runner.run_benchmark_direct

        def failing(scheme, bench, setup):
            if scheme == "gpupd":
                raise SimulationError("boom")
            return direct(scheme, bench, setup)

        monkeypatch.setattr(runner, "run_benchmark_direct", failing)
        eng = Engine(retries=0)
        table = sweep("num_gpus", [2], schemes=("chopin+sched", "gpupd"),
                      benchmarks=BENCH, engine=eng)
        rendered = render_sweep(table, "num_gpus", "partial sweep")
        assert "FAILED" in rendered
        summary = render_engine_summary(eng.counters, eng.failures())
        assert "1 failed" in summary
        assert "SimulationError" in summary
        assert "gpupd/wolf" in summary

    def test_speedup_table_salvages_failed_scheme(self, monkeypatch):
        direct = runner.run_benchmark_direct

        def failing(scheme, bench, setup):
            if scheme == "gpupd":
                raise SimulationError("boom")
            return direct(scheme, bench, setup)

        monkeypatch.setattr(runner, "run_benchmark_direct", failing)
        from repro.harness import experiments as E
        with Engine(retries=0).activated():
            table = E.fig13_performance(benchmarks=BENCH)
        assert table["wolf"]["gpupd"] == "FAILED"
        assert table["GMean"]["gpupd"] == "FAILED"
        assert isinstance(table["wolf"]["chopin+sched"], float)

    def test_export_rows_carry_status_and_counters(self, monkeypatch):
        direct = runner.run_benchmark_direct

        def failing(scheme, bench, setup):
            if scheme == "gpupd":
                raise SimulationError("boom")
            return direct(scheme, bench, setup)

        monkeypatch.setattr(runner, "run_benchmark_direct", failing)
        from repro.harness.export import COLUMNS, collect_rows
        setup = runner.make_setup("tiny", num_gpus=2)
        with Engine(retries=0).activated():
            rows = collect_rows(["wolf"], ["chopin+sched", "gpupd"], setup)
        by_scheme = {row["scheme"]: row for row in rows}
        assert by_scheme["gpupd"]["status"] == "failed"
        assert by_scheme["gpupd"]["job_attempts"] == 1
        assert by_scheme["chopin+sched"]["status"] == "ok"
        assert by_scheme["chopin+sched"]["job_attempts"] == 1
        for row in rows:
            assert set(row) == set(COLUMNS)


class TestEngineRouting:
    def test_activated_routes_and_restores(self):
        setup = runner.make_setup("tiny", num_gpus=2)
        eng = Engine()
        with eng.activated():
            runner.run_benchmark("chopin+sched", "wolf", setup)
            assert eng.counters.jobs == 1
        # restored: later runs bypass the (now closed) engine
        runner.run_benchmark("chopin+sched", "wolf", setup)
        assert eng.counters.jobs == 1

    def test_non_portable_setup_falls_back_to_direct(self):
        setup = runner.make_setup("tiny", num_gpus=2) \
            .replace_config(composition_threshold=9)
        eng = Engine()
        with eng.activated():
            result = runner.run_benchmark("chopin+sched", "wolf", setup)
        assert result.frame_cycles > 0
        assert eng.counters.jobs == 0  # unsupervised fallback

    def test_in_process_result_keeps_image(self):
        """The serial fast path hands back the real render, so CLI
        commands that dump frames still work under an engine."""
        setup = runner.make_setup("tiny", num_gpus=2)
        with Engine().activated():
            result = runner.run_benchmark("chopin+sched", "wolf", setup)
        assert result.image is not None
        assert result.stats.job_attempts == 1


class TestCLI:
    def test_sweep_command_partial_exit_code(self, monkeypatch, capsys):
        direct = runner.run_benchmark_direct

        def failing(scheme, bench, setup):
            if scheme == "gpupd":
                raise SimulationError("boom")
            return direct(scheme, bench, setup)

        monkeypatch.setattr(runner, "run_benchmark_direct", failing)
        from repro.cli import EXIT_PARTIAL, main
        code = main(["sweep", "num_gpus", "2", "--schemes", "gpupd",
                     "chopin+sched", "--benchmarks", "wolf",
                     "--retries", "0"])
        captured = capsys.readouterr()
        assert code == EXIT_PARTIAL
        assert "FAILED" in captured.out
        assert "SimulationError" in captured.err

    def test_sweep_command_resume_round_trip(self, tmp_path, capsys):
        from repro.cli import main
        journal = tmp_path / "sweep.jsonl"
        argv = ["sweep", "num_gpus", "2", "4", "--schemes", "chopin+sched",
                "--benchmarks", "wolf", "--journal", str(journal)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume", str(journal)]) == 0
        resumed = capsys.readouterr()
        assert resumed.out == first  # bit-identical table
        assert "4 resumed from journal" in resumed.err

    def test_config_error_maps_to_exit_2(self, capsys):
        from repro.cli import EXIT_CONFIG, main
        code = main(["sweep", "warp_size", "32", "--benchmarks", "wolf"])
        assert code == EXIT_CONFIG
        assert "ConfigError" in capsys.readouterr().err

    def test_engine_errors_map_to_distinct_exit_codes(self):
        from repro import cli
        from repro.errors import (ConfigError, JobTimeout, ReproError,
                                  RetryBudgetExhausted, WorkerCrashed)
        codes = [code for _, code in cli.EXIT_CODES]
        assert len(set(codes)) == len(codes)

        def code_for(exc):
            for exc_type, code in cli.EXIT_CODES:
                if isinstance(exc, exc_type):
                    return code

        assert code_for(RetryBudgetExhausted("x")) == cli.EXIT_BUDGET
        assert code_for(JobTimeout("x")) == cli.EXIT_TIMEOUT
        assert code_for(WorkerCrashed("x")) == cli.EXIT_CRASH
        assert code_for(ConfigError("x")) == cli.EXIT_CONFIG
        assert code_for(ReproError("x")) == cli.EXIT_ERROR


class TestAttemptLog:
    """Per-attempt retry/backoff observability on JobOutcome + journal."""

    def test_crash_logs_every_attempt_with_backoff(self):
        eng = Engine(retries=2, backoff=0.5, backoff_cap=10.0, isolate=True)
        eng._sleep = lambda s: None
        out = eng.run_job(JobSpec(kind="crash"))
        assert out.status == "failed"
        log = out.attempt_log
        assert [entry["attempt"] for entry in log] == [1, 2, 3]
        assert all(entry["status"] == "failed" for entry in log)
        assert all(entry["error"] == "WorkerCrashed" for entry in log)
        # exponential backoff before each retry; none after the last
        assert [entry["backoff_s"] for entry in log] == [0.5, 1.0, 0.0]

    def test_flaky_recovery_ends_with_ok_entry(self, tmp_path):
        eng = Engine(retries=2, backoff=0.0, isolate=True)
        out = eng.run_job(JobSpec(kind="flaky", params=(
            ("counter", str(tmp_path / "flaky")), ("fail_times", 1))))
        assert out.status == "ok"
        assert [e["status"] for e in out.attempt_log] == ["failed", "ok"]
        assert out.attempt_log[-1]["backoff_s"] == 0.0

    def test_clean_run_logs_single_ok_attempt(self):
        eng = Engine()
        out = eng.run_job(benchmark_job("chopin+sched", "wolf", num_gpus=2))
        assert out.status == "ok"
        assert out.attempt_log == [
            {"attempt": 1, "status": "ok", "backoff_s": 0.0}]

    def test_attempt_log_persists_through_journal(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        eng = Engine(retries=1, backoff=0.25, isolate=True, journal=journal)
        eng._sleep = lambda s: None
        eng.run_job(JobSpec(kind="crash"))
        entry = json.loads(journal.read_text().splitlines()[-1])
        assert [e["backoff_s"] for e in entry["attempt_log"]] == [0.25, 0.0]
        assert all(e["error"] == "WorkerCrashed"
                   for e in entry["attempt_log"])
