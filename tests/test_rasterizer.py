"""Barycentric rasterizer: coverage, fill rule, interpolation."""

import numpy as np
import pytest

from repro.raster.rasterizer import (estimate_coverage, rasterize_triangle)


def raster(v0, v1, v2, depths=(0.5, 0.5, 0.5), size=(32, 32)):
    xy = np.array([v0, v1, v2], dtype=np.float32)
    depth = np.array(depths, dtype=np.float32)
    colors = np.eye(3, 4, dtype=np.float32)
    return rasterize_triangle(xy, depth, colors, size[0], size[1])


class TestCoverage:
    def test_right_triangle_covers_half_square(self):
        frags = raster([0, 0], [16, 0], [0, 16])
        # half of a 16x16 square, ±edge effects
        assert abs(frags.count - 128) <= 16

    def test_degenerate_triangle_empty(self):
        frags = raster([5, 5], [5, 5], [5, 5])
        assert frags.count == 0

    def test_offscreen_triangle_empty(self):
        frags = raster([-20, -20], [-10, -20], [-20, -10])
        assert frags.count == 0

    def test_clipped_to_screen(self):
        frags = raster([-100, -100], [100, -100], [0, 100], size=(8, 8))
        assert 0 < frags.count <= 64
        assert frags.xs.min() >= 0 and frags.xs.max() < 8
        assert frags.ys.min() >= 0 and frags.ys.max() < 8

    def test_winding_does_not_matter(self):
        ccw = raster([2, 2], [20, 2], [2, 20])
        cw = raster([2, 2], [2, 20], [20, 2])
        assert ccw.count == cw.count
        a = set(zip(ccw.xs.tolist(), ccw.ys.tolist()))
        b = set(zip(cw.xs.tolist(), cw.ys.tolist()))
        assert a == b

    def test_subpixel_triangle_may_miss_all_centres(self):
        frags = raster([3.1, 3.1], [3.3, 3.1], [3.1, 3.3])
        assert frags.count == 0


class TestTopLeftRule:
    def test_shared_edge_covered_exactly_once(self):
        """Splitting a square along its diagonal must cover each pixel of
        the square exactly once — the reason transparent draws don't double
        blend along shared edges."""
        a = raster([0, 0], [16, 0], [16, 16])
        b = raster([0, 0], [16, 16], [0, 16])
        pixels_a = set(zip(a.xs.tolist(), a.ys.tolist()))
        pixels_b = set(zip(b.xs.tolist(), b.ys.tolist()))
        assert not pixels_a & pixels_b, "diagonal pixels double-covered"
        assert len(pixels_a | pixels_b) == 256

    def test_adjacent_triangles_tile_strip(self):
        covered = []
        for x in range(0, 16, 4):
            covered.append(raster([x, 0], [x + 4, 0], [x + 4, 8]))
            covered.append(raster([x, 0], [x + 4, 8], [x, 8]))
        seen = {}
        for frags in covered:
            for px, py in zip(frags.xs.tolist(), frags.ys.tolist()):
                seen[(px, py)] = seen.get((px, py), 0) + 1
        assert all(count == 1 for count in seen.values())


class TestInterpolation:
    def test_vertex_colors_near_vertices(self):
        frags = raster([0, 0], [31, 0], [0, 31])
        idx = np.argmin(frags.xs + frags.ys)  # nearest the v0 corner
        assert frags.colors[idx, 0] > 0.9  # v0 carries red

    def test_depth_interpolates_linearly(self):
        frags = raster([0, 0], [30, 0], [0, 30], depths=(0.0, 1.0, 1.0))
        near_v0 = np.argmin(frags.xs + frags.ys)
        far_corner = np.argmax(frags.xs)
        assert frags.depths[near_v0] < 0.1
        assert frags.depths[far_corner] > 0.8

    def test_flat_depth_exact(self):
        frags = raster([0, 0], [10, 0], [0, 10], depths=(0.25, 0.25, 0.25))
        assert np.allclose(frags.depths, 0.25, atol=1e-5)

    def test_select_filters_fragments(self):
        frags = raster([0, 0], [16, 0], [0, 16])
        mask = frags.xs < 4
        sub = frags.select(mask)
        assert sub.count == int(mask.sum())
        assert (sub.xs < 4).all()


class TestEstimateCoverage:
    def test_matches_exact_for_onscreen_triangle(self):
        estimate = estimate_coverage(
            np.array([[0, 0], [16, 0], [0, 16]], dtype=np.float32), 32, 32)
        assert estimate == pytest.approx(128, rel=0.1)

    def test_zero_for_offscreen(self):
        estimate = estimate_coverage(
            np.array([[-10, -10], [-5, -10], [-10, -5]], dtype=np.float32),
            32, 32)
        assert estimate == 0.0
