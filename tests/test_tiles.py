"""Screen tiling and tile-to-GPU ownership (the SFR split)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.raster.tiles import TileGrid


class TestGridGeometry:
    def test_tile_counts_round_up(self):
        grid = TileGrid(100, 60, tile_size=32)
        assert grid.tiles_x == 4
        assert grid.tiles_y == 2

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ConfigError):
            TileGrid(0, 10, 8)

    def test_tile_bounds_clamped_at_edges(self):
        grid = TileGrid(100, 60, tile_size=32)
        assert grid.tile_bounds(3, 1) == (96, 32, 100, 60)

    def test_tile_of_pixel(self):
        grid = TileGrid(128, 128, tile_size=32)
        assert grid.tile_of_pixel(0, 0) == (0, 0)
        assert grid.tile_of_pixel(33, 65) == (1, 2)


class TestOwnership:
    def test_owner_map_shape_and_range(self):
        grid = TileGrid(96, 64, tile_size=16)
        owners = grid.owner_map(4)
        assert owners.shape == (64, 96)
        assert set(np.unique(owners)) == {0, 1, 2, 3}

    def test_interleaving_alternates_along_rows(self):
        grid = TileGrid(64, 64, tile_size=16)
        owners = grid.owner_map(2)
        assert owners[0, 0] != owners[0, 16]

    def test_pixels_partition_exactly(self):
        grid = TileGrid(100, 60, tile_size=32)
        per_gpu = grid.pixels_per_gpu(3)
        assert sum(per_gpu) == 100 * 60

    def test_masks_are_disjoint_and_complete(self):
        grid = TileGrid(80, 48, tile_size=16)
        union = np.zeros((48, 80), dtype=int)
        for gpu in range(4):
            union += grid.gpu_pixel_mask(gpu, 4).astype(int)
        assert (union == 1).all()

    def test_single_gpu_owns_everything(self):
        grid = TileGrid(64, 64, tile_size=16)
        assert grid.gpu_pixel_mask(0, 1).all()

    def test_tiles_of_gpu_matches_owner_map(self):
        grid = TileGrid(64, 64, tile_size=16)
        tiles = grid.tiles_of_gpu(1, 3)
        for tx, ty in tiles:
            assert grid.owner_of_tile(tx, ty, 3) == 1

    def test_rejects_zero_gpus(self):
        grid = TileGrid(64, 64, tile_size=16)
        with pytest.raises(ConfigError):
            grid.owner_map(0)


class TestTouchedTiles:
    def test_single_pixel_touches_one_tile(self):
        grid = TileGrid(64, 64, tile_size=16)
        touched = np.zeros((64, 64), dtype=bool)
        touched[20, 40] = True
        tiles = grid.touched_tiles(touched)
        assert tiles.sum() == 1
        assert tiles[1, 2]

    def test_empty_mask_touches_nothing(self):
        grid = TileGrid(64, 64, tile_size=16)
        assert grid.touched_tiles(np.zeros((64, 64), bool)).sum() == 0

    def test_non_multiple_resolution_handled(self):
        grid = TileGrid(70, 50, tile_size=32)
        touched = np.ones((50, 70), dtype=bool)
        assert grid.touched_tiles(touched).all()

    def test_shape_mismatch_rejected(self):
        grid = TileGrid(64, 64, tile_size=16)
        with pytest.raises(ConfigError):
            grid.touched_tiles(np.zeros((10, 10), bool))


class TestRegionSizes:
    def test_full_screen_splits_by_ownership(self):
        grid = TileGrid(64, 64, tile_size=16)
        touched = np.ones((64, 64), dtype=bool)
        sizes = grid.region_sizes_to_gpus(touched, 4)
        assert sum(sizes.values()) == 64 * 64
        assert all(v == 1024 for v in sizes.values())

    def test_untouched_tiles_excluded(self):
        grid = TileGrid(64, 64, tile_size=16)
        touched = np.zeros((64, 64), dtype=bool)
        touched[0:16, 0:16] = True  # exactly tile (0, 0), owned by GPU 0
        sizes = grid.region_sizes_to_gpus(touched, 4)
        assert sizes[0] == 256
        assert sizes[1] == sizes[2] == sizes[3] == 0

    def test_tile_granularity_rounds_up(self):
        grid = TileGrid(64, 64, tile_size=16)
        touched = np.zeros((64, 64), dtype=bool)
        touched[3, 3] = True  # one pixel -> whole 16x16 tile counted
        sizes = grid.region_sizes_to_gpus(touched, 4)
        assert sizes[0] == 256
