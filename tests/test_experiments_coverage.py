"""Smoke coverage for the remaining experiment drivers on a small subset."""

import pytest

from repro.harness import experiments as E

ONE = ("wolf",)


class TestSpeedupExperiments:
    def test_fig5_contains_ideals(self):
        table = E.fig5_ideal_speedup(benchmarks=ONE)
        assert {"gpupd", "gpupd-ideal", "chopin-ideal"} \
            <= set(table["wolf"])
        assert table["wolf"]["chopin-ideal"] > 0

    def test_fig8_round_robin_columns(self):
        table = E.fig8_round_robin(benchmarks=ONE)
        assert "chopin-rr" in table["wolf"]

    def test_fig14_breakdown_normalized(self):
        table = E.fig14_breakdown(benchmarks=ONE)
        dup = table["wolf"]["duplication"]
        total = sum(dup.values())
        assert 0.9 < total <= 1.01  # duplication's own stages sum to ~1

    def test_fig16_zero_retention_matches_fig13(self):
        rows = E.fig16_culling_sensitivity(benchmark="wolf",
                                           retained=(0.0,))
        table = E.fig13_performance(benchmarks=("wolf",))
        assert rows[0]["speedup"] == pytest.approx(
            table["wolf"]["chopin+sched"], rel=1e-6)

    def test_fig18_axis_in_paper_units(self):
        table = E.fig18_update_interval(benchmarks=ONE,
                                        intervals=(1, 1024),
                                        schemes=("chopin+sched",))
        assert set(table) == {1, 1024}

    def test_fig19_multiple_counts(self):
        table = E.fig19_gpu_scaling(benchmarks=ONE, gpu_counts=(2, 4),
                                    schemes=("chopin+sched",))
        assert set(table) == {2, 4}

    def test_fig20_fixed_baseline_normalization(self):
        """At the Table II default bandwidth, the sweep value equals the
        same-config speedup (baseline == swept config)."""
        sweep = E.fig20_bandwidth(benchmarks=ONE, bandwidths=(64.0,),
                                  schemes=("chopin+sched",))
        plain = E.fig13_performance(benchmarks=ONE)
        assert sweep[64.0]["chopin+sched"] == pytest.approx(
            plain["wolf"]["chopin+sched"], rel=1e-9)

    def test_fig21_default_latency_matches(self):
        sweep = E.fig21_latency(benchmarks=ONE, latencies=(200,),
                                schemes=("chopin+sched",))
        plain = E.fig13_performance(benchmarks=ONE)
        assert sweep[200]["chopin+sched"] == pytest.approx(
            plain["wolf"]["chopin+sched"], rel=1e-9)

    def test_fig22_threshold_axis(self):
        table = E.fig22_threshold(benchmarks=ONE,
                                  thresholds=(4096,),
                                  schemes=("chopin+sched",))
        assert 4096 in table


class TestScalarExperiments:
    def test_sec6d_values(self):
        data = E.sec6d_scheduler_traffic(num_gpus=8)
        assert data["composition_sched_traffic_bytes"] == 512

    def test_sec6f_scales_with_gpus(self):
        assert E.sec6f_hardware_cost(16)["draw_scheduler_bytes"] == 256

    def test_sec6g_monotone(self):
        rows = E.sec6g_workload_trend(benchmark="wolf",
                                      detail_factors=(1.0, 2.0))
        assert rows[1]["primitive_cycles"] \
            == pytest.approx(2 * rows[0]["primitive_cycles"])
        assert rows[1]["fragment_cycles"] == rows[0]["fragment_cycles"]
