"""Edge cases across the scheme layer: odd GPU counts, empty assignments,
opaque-only / transparent-heavy frames, minimal traces."""

import numpy as np
import pytest

from repro.api import CommandRecorder
from repro.geometry import BlendOp
from repro.harness import build_scheme, make_setup
from repro.harness.runner import Setup
from repro.config import SystemConfig
from repro.timing.costs import CostModel
from repro.sfr import render_reference_image


def setup_for(num_gpus, tile_size=8, composition_threshold=16):
    config = SystemConfig(num_gpus=num_gpus, tile_size=tile_size,
                          composition_threshold=composition_threshold)
    return Setup(scale="tiny", config=config,
                 costs=CostModel(gpu=config.gpu, draw_issue_cost=10.0))


def localized_draws(rec, rng, count, tris=30):
    for index in range(count):
        center = rng.uniform(-0.8, 0.8, 2)
        positions = np.empty((tris, 3, 3), dtype=np.float32)
        base = center + rng.uniform(-0.1, 0.1, (tris, 2))
        positions[:, 0, :2] = base
        positions[:, 1, :2] = base + rng.normal(0, 0.05, (tris, 2))
        positions[:, 2, :2] = base + rng.normal(0, 0.05, (tris, 2))
        positions[..., 2] = 0.1 + 0.8 * index / max(count, 1)
        colors = np.ones((tris, 3, 4), dtype=np.float32)
        colors[..., :3] = rng.random(3)
        rec.draw_triangles(positions, colors)


def check_all_schemes(trace, setup, tol=3e-3):
    reference = render_reference_image(trace, setup.config)
    for scheme in ("duplication", "gpupd", "sort-middle", "chopin",
                   "chopin+sched", "chopin-ideal"):
        result = build_scheme(scheme, setup).run(trace)
        error = float(np.abs(result.image.color - reference.color).max())
        assert error < tol, f"{scheme}: {error}"
        assert np.isfinite(result.frame_cycles)
        assert result.frame_cycles > 0


class TestOddGPUCounts:
    @pytest.mark.parametrize("num_gpus", [1, 2, 3, 5, 7])
    def test_all_schemes_on_odd_counts(self, num_gpus):
        rng = np.random.default_rng(42)
        rec = CommandRecorder(64, 64)
        rec.draw_quad(-1, -1, 1, 1, 0.99, (0.1, 0.1, 0.3, 1.0),
                      pixel_cost=2.0)
        localized_draws(rec, rng, 20)
        rec.set_blend(BlendOp.OVER)
        positions = np.array([[[-0.4, -0.4, 0.05], [0.4, -0.4, 0.05],
                               [0.0, 0.4, 0.05]]], dtype=np.float32)
        colors = np.tile(np.array([0.2, 0.1, 0.1, 0.5], np.float32),
                         (1, 3, 1))
        rec.draw_triangles(positions, colors)
        trace = rec.finish("odd")
        check_all_schemes(trace, setup_for(num_gpus))


class TestDegenerateFrames:
    def test_opaque_only_frame(self):
        """No transparent groups at all (generator always adds some, the
        recorder need not)."""
        rng = np.random.default_rng(1)
        rec = CommandRecorder(64, 64)
        localized_draws(rec, rng, 16)
        trace = rec.finish("opaque-only")
        check_all_schemes(trace, setup_for(4))

    def test_transparent_only_frame(self):
        """A frame that is one big transparent group."""
        rng = np.random.default_rng(2)
        rec = CommandRecorder(64, 64)
        rec.set_blend(BlendOp.OVER)
        for index in range(6):
            positions = rng.uniform(-0.7, 0.7, (20, 3, 3)) \
                .astype(np.float32)
            positions[..., 2] = 0.9 - index * 0.1
            colors = np.full((20, 3, 4), 0.2, dtype=np.float32)
            rec.draw_triangles(positions, colors)
        trace = rec.finish("transparent-only")
        check_all_schemes(trace, setup_for(4), tol=5e-3)

    def test_fewer_draws_than_gpus(self):
        rng = np.random.default_rng(3)
        rec = CommandRecorder(64, 64)
        localized_draws(rec, rng, 3, tris=40)
        trace = rec.finish("sparse")
        check_all_schemes(trace, setup_for(8))

    def test_single_draw_frame(self):
        rec = CommandRecorder(32, 32)
        rec.draw_quad(-1, -1, 1, 1, 0.5, (1, 0, 0, 1), pixel_cost=2.0)
        trace = rec.finish("one-draw")
        check_all_schemes(trace, setup_for(4))

    def test_draws_entirely_offscreen(self):
        rng = np.random.default_rng(4)
        rec = CommandRecorder(32, 32)
        rec.draw_quad(-1, -1, 1, 1, 0.9, (0, 0, 1, 1), pixel_cost=2.0)
        positions = rng.uniform(3.0, 5.0, (25, 3, 3)).astype(np.float32)
        positions[..., 2] = 0.5
        rec.draw_triangles(positions,
                           np.ones((25, 3, 4), dtype=np.float32))
        trace = rec.finish("offscreen")
        check_all_schemes(trace, setup_for(4))


class TestExtremeKnobs:
    def test_tiny_tile_size(self):
        rng = np.random.default_rng(5)
        rec = CommandRecorder(64, 64)
        localized_draws(rec, rng, 12)
        trace = rec.finish("tiny-tiles")
        check_all_schemes(trace, setup_for(4, tile_size=4))

    def test_tile_larger_than_screen(self):
        rng = np.random.default_rng(6)
        rec = CommandRecorder(32, 32)
        localized_draws(rec, rng, 8)
        trace = rec.finish("one-tile")
        # a single 64px tile: GPU0 owns everything
        check_all_schemes(trace, setup_for(4, tile_size=64))

    def test_zero_threshold_everything_composed(self):
        rng = np.random.default_rng(7)
        rec = CommandRecorder(64, 64)
        localized_draws(rec, rng, 10)
        trace = rec.finish("all-composed")
        check_all_schemes(trace, setup_for(4, composition_threshold=0))
