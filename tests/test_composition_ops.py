"""Composition operators and sub-image reductions, incl. property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.composition import (SubImage, blend, blend_merge, composite_opaque,
                               composite_transparent,
                               composite_transparent_tree, depth_merge,
                               identity_for, is_associative_pair, over,
                               resolve_to_background)
from repro.errors import CompositionError
from repro.framebuffer import DEPTH_CLEAR, Framebuffer
from repro.geometry import BlendOp

pixels = hnp.arrays(np.float32, (4,), elements=st.floats(
    0.0, 1.0, width=32, allow_nan=False))


def random_subimage(rng, shape=(6, 6), touched_p=0.8):
    return SubImage(
        color=rng.random(shape + (4,), dtype=np.float32),
        depth=rng.random(shape, dtype=np.float32),
        touched=rng.random(shape) < touched_p,
    )


class TestOperators:
    def test_over_formula(self):
        old = np.array([0.4, 0.4, 0.4, 1.0], dtype=np.float32)
        new = np.array([0.3, 0.0, 0.0, 0.5], dtype=np.float32)
        out = over(old, new)
        assert np.allclose(out, new + 0.5 * old)

    def test_over_opaque_new_replaces(self):
        old = np.array([0.4, 0.4, 0.4, 1.0], dtype=np.float32)
        new = np.array([1.0, 0.0, 0.0, 1.0], dtype=np.float32)
        assert np.allclose(over(old, new), new)

    @given(a=pixels, b=pixels, c=pixels)
    @settings(max_examples=60, deadline=None)
    def test_over_is_associative(self, a, b, c):
        # ((a over b) over c) == (a over (b-and-c merged as one layer))
        left = over(over(a, b), c)
        merged = over(b, c)
        assert np.allclose(over(a, merged), left, atol=1e-5)

    @given(a=pixels, b=pixels, c=pixels)
    @settings(max_examples=60, deadline=None)
    def test_additive_is_associative(self, a, b, c):
        left = blend(BlendOp.ADDITIVE, blend(BlendOp.ADDITIVE, a, b), c)
        right = blend(BlendOp.ADDITIVE, a, blend(BlendOp.ADDITIVE, b, c))
        assert np.allclose(left, right, atol=1e-5)

    @given(a=pixels, b=pixels, c=pixels)
    @settings(max_examples=60, deadline=None)
    def test_multiply_is_associative(self, a, b, c):
        left = blend(BlendOp.MULTIPLY, blend(BlendOp.MULTIPLY, a, b), c)
        right = blend(BlendOp.MULTIPLY, a, blend(BlendOp.MULTIPLY, b, c))
        assert np.allclose(left, right, atol=1e-5)

    def test_over_not_commutative(self):
        glass = np.array([0.2, 0.2, 0.8, 0.5], dtype=np.float32)
        pink = np.array([0.5, 0.2, 0.2, 0.4], dtype=np.float32)
        assert not np.allclose(over(glass, pink), over(pink, glass))

    def test_identity_elements(self):
        p = np.array([0.3, 0.5, 0.7, 0.6], dtype=np.float32)
        assert np.allclose(blend(BlendOp.OVER, identity_for(BlendOp.OVER), p),
                           p)
        assert np.allclose(
            blend(BlendOp.MULTIPLY, identity_for(BlendOp.MULTIPLY), p), p)
        with pytest.raises(CompositionError):
            identity_for(BlendOp.REPLACE)

    def test_associative_pair_rule(self):
        assert is_associative_pair(BlendOp.OVER, BlendOp.OVER)
        assert not is_associative_pair(BlendOp.OVER, BlendOp.ADDITIVE)


class TestDepthMerge:
    def test_closer_pixel_wins(self, rng):
        a = random_subimage(rng, touched_p=1.0)
        b = random_subimage(rng, touched_p=1.0)
        merged = depth_merge(a, b)
        wins_b = b.depth < a.depth
        assert np.allclose(merged.color[wins_b], b.color[wins_b])
        assert np.allclose(merged.color[~wins_b], a.color[~wins_b])

    def test_untouched_side_never_wins(self, rng):
        a = random_subimage(rng, touched_p=1.0)
        b = random_subimage(rng, touched_p=1.0)
        b.depth[:] = 0.0         # b "closer" everywhere...
        b.touched[:] = False     # ...but b never actually drew
        merged = depth_merge(a, b)
        assert np.allclose(merged.color, a.color)

    def test_commutative_on_distinct_depths(self, rng):
        a = random_subimage(rng, touched_p=1.0)
        b = random_subimage(rng, touched_p=1.0)
        ab, ba = depth_merge(a, b), depth_merge(b, a)
        distinct = a.depth != b.depth
        assert np.allclose(ab.color[distinct], ba.color[distinct])

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(CompositionError):
            depth_merge(random_subimage(rng, (4, 4)),
                        random_subimage(rng, (6, 6)))


class TestOpaqueComposition:
    def test_any_order_gives_same_image(self, rng):
        images = [random_subimage(rng) for _ in range(5)]
        forward = composite_opaque(images)
        backward = composite_opaque(images, order=[4, 3, 2, 1, 0])
        shuffled = composite_opaque(images, order=[2, 0, 4, 1, 3])
        assert np.allclose(forward.color, backward.color)
        assert np.allclose(forward.color, shuffled.color)

    def test_empty_rejected(self):
        with pytest.raises(CompositionError):
            composite_opaque([])


class TestTransparentComposition:
    @pytest.mark.parametrize("count", [2, 3, 5, 8])
    def test_tree_matches_sequential(self, rng, count):
        images = [random_subimage(rng) for _ in range(count)]
        sequential = composite_transparent(images, BlendOp.OVER)
        tree = composite_transparent_tree(images, BlendOp.OVER)
        assert np.allclose(sequential.color, tree.color, atol=1e-5)

    def test_order_matters(self, rng):
        a, b = random_subimage(rng), random_subimage(rng)
        ab = composite_transparent([a, b], BlendOp.OVER)
        ba = composite_transparent([b, a], BlendOp.OVER)
        assert not np.allclose(ab.color, ba.color, atol=1e-4)

    def test_blank_layers_are_identity(self, rng):
        layer = random_subimage(rng)
        blank = SubImage.blank(6, 6, BlendOp.OVER)
        merged = blend_merge(blank, layer, BlendOp.OVER)
        assert np.allclose(merged.color, layer.color, atol=1e-6)


class TestResolve:
    def test_opaque_resolve_depth_tested(self, rng):
        fb = Framebuffer(6, 6)
        fb.depth[:] = 0.5
        fb.color[:] = 0.25
        composed = random_subimage(rng, touched_p=1.0)
        composed.depth[:] = 0.9   # everything behind the background
        resolve_to_background(fb.color, fb.depth, composed, BlendOp.REPLACE)
        assert np.allclose(fb.color, 0.25)

    def test_opaque_resolve_writes_winners(self, rng):
        fb = Framebuffer(6, 6)
        composed = random_subimage(rng, touched_p=1.0)
        composed.depth[:] = 0.1
        resolve_to_background(fb.color, fb.depth, composed, BlendOp.REPLACE)
        assert np.allclose(fb.color, composed.color)
        assert np.allclose(fb.depth, 0.1)

    def test_transparent_resolve_blends_once(self, rng):
        fb = Framebuffer(6, 6)
        fb.color[:] = np.array([0.5, 0.5, 0.5, 1.0])
        composed = random_subimage(rng, touched_p=1.0)
        expected = blend(BlendOp.OVER, fb.color.copy(), composed.color)
        resolve_to_background(fb.color, fb.depth, composed, BlendOp.OVER,
                              depth_write=False)
        assert np.allclose(fb.color, expected, atol=1e-6)
        assert (fb.depth == DEPTH_CLEAR).all()

    def test_size_mismatch_rejected(self, rng):
        fb = Framebuffer(4, 4)
        with pytest.raises(CompositionError):
            resolve_to_background(fb.color, fb.depth,
                                  random_subimage(rng, (6, 6)),
                                  BlendOp.REPLACE)
