"""Alternate Frame Rendering and the micro-stutter motivation (§I)."""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.sfr import AlternateFrameRendering, frame_render_cycles
from repro.timing.costs import CostModel
from repro.traces import TraceSpec, synthesize
from repro.traces.trace import Trace


@pytest.fixture(scope="module")
def multi_frame_trace():
    """Several frames with alternating cost (stutter-inducing)."""
    frames = []
    for index in range(8):
        spec = TraceSpec(name=f"f{index}", width=64, height=64,
                         num_draws=16,
                         num_triangles=400 if index % 2 == 0 else 1600,
                         seed=100 + index, cost_multiplier=4.0)
        frames.append(synthesize(spec).frame)
    return Trace(name="anim", width=64, height=64, frames=frames)


class TestFrameCycles:
    def test_positive_and_monotone_in_content(self):
        light = synthesize(TraceSpec(name="l", width=64, height=64,
                                     num_draws=16, num_triangles=400,
                                     seed=1, cost_multiplier=4.0))
        heavy = synthesize(TraceSpec(name="h", width=64, height=64,
                                     num_draws=16, num_triangles=3200,
                                     seed=1, cost_multiplier=4.0))
        costs = CostModel(gpu=SystemConfig().gpu)
        light_cycles = frame_render_cycles(light.frame, 64, 64, costs)
        heavy_cycles = frame_render_cycles(heavy.frame, 64, 64, costs)
        assert 0 < light_cycles < heavy_cycles


class TestAFR:
    def test_throughput_scales_with_gpus(self, multi_frame_trace):
        single = AlternateFrameRendering(
            SystemConfig(num_gpus=1)).run(multi_frame_trace)
        quad = AlternateFrameRendering(
            SystemConfig(num_gpus=4)).run(multi_frame_trace)
        # pacing can idle a single GPU slightly; throughput stays ~1
        assert 0.85 <= single.throughput_speedup <= 1.0
        assert quad.throughput_speedup > 2.0

    def test_frame_latency_not_improved(self, multi_frame_trace):
        """AFR's defining weakness: each frame still takes a full
        single-GPU render time."""
        result = AlternateFrameRendering(
            SystemConfig(num_gpus=4)).run(multi_frame_trace)
        assert result.completion_times[0] \
            == pytest.approx(result.frame_cycles[0])

    def test_micro_stutter_on_uneven_frames(self, multi_frame_trace):
        result = AlternateFrameRendering(
            SystemConfig(num_gpus=4)).run(multi_frame_trace)
        assert result.micro_stutter > 0.1

    def test_uniform_frames_are_smooth(self):
        frames = [synthesize(TraceSpec(name="u", width=64, height=64,
                                       num_draws=16, num_triangles=800,
                                       seed=5, cost_multiplier=4.0)).frame
                  for _ in range(8)]
        trace = Trace(name="smooth", width=64, height=64, frames=frames)
        result = AlternateFrameRendering(SystemConfig(num_gpus=4)).run(trace)
        assert result.micro_stutter == pytest.approx(0.0, abs=1e-6)

    def test_round_robin_assignment(self, multi_frame_trace):
        result = AlternateFrameRendering(
            SystemConfig(num_gpus=3)).run(multi_frame_trace)
        # frame i completes on gpu i%3; later frames on the same GPU stack up
        assert result.completion_times[3] > result.completion_times[0]
        assert len(result.completion_times) == 8
