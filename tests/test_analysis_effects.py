"""Effect/purity inference tests: fixtures per rule + seeded mutations.

The fixture tests pin down the summary lattice (vocabulary
classification, parameter/receiver mutation, interprocedural folding,
``# effect:`` declarations) and the two derived checks built on it —
``phase-impure`` and ``hot-alloc``. The meta-tests at the bottom copy
``src/repro`` and seed it with exactly the bug classes the pass exists
to catch: a fault-state read inside the geometry phase, a stale
``# effect: pure`` annotation, and a re-introduced per-call allocation
on the rasterizer hot path. The unmutated tree stays clean
(test_flow.py pins that invariant).
"""

import pathlib
import shutil
import textwrap

from repro.analysis import lint_paths
from repro.analysis.effects import (RULE_HOT_ALLOC, RULE_PHASE,
                                    RULE_UNDECLARED, EffectChecker,
                                    HotAllocChecker, display_tags)
from repro.analysis.flow import Project
from repro.analysis.simlint import LintModule

REPO_SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def project_of(*mods):
    """Build a Project from (name, src) or (name, path, src) tuples."""
    entries = []
    for mod in mods:
        if len(mod) == 2:
            name, src = mod
            path = f"{name}.py"
        else:
            name, path, src = mod
        entries.append((name, False, LintModule(path, textwrap.dedent(src))))
    return Project.from_modules(entries)


def summary_of(source, qualname="fixture.fn"):
    project = project_of(("fixture", source))
    return EffectChecker(project).summary(project.functions[qualname])


def effect_findings(source):
    return EffectChecker(project_of(("fixture", source))).run()


def rules_of(findings):
    return {finding.rule for finding in findings}


# --------------------------------------------------------- summary lattice


class TestEffectSummaries:
    def test_pure_function(self):
        summary = summary_of("""
            def fn(a, b):
                return a + b
        """)
        assert display_tags(summary) == frozenset()
        assert summary.complete

    def test_config_read_classified_by_vocabulary(self):
        summary = summary_of("""
            def fn(config, x):
                return x * config.scale
        """)
        assert display_tags(summary) == {"reads-config"}
        assert "config" in summary.param_reads

    def test_assignment_and_fault_vocabulary(self):
        summary = summary_of("""
            def fn(state, i):
                if state.failed_gpus:
                    return 0
                return state.owner_map[i]
        """)
        assert display_tags(summary) == {"reads-assignment",
                                         "reads-fault-state"}

    def test_live_sim_state_read(self):
        summary = summary_of("""
            def fn(sim):
                return sim.time
        """)
        assert "reads-live-sim-state" in display_tags(summary)

    def test_parameter_mutation(self):
        summary = summary_of("""
            def fn(metrics, n):
                metrics.count += n
        """)
        assert summary.mutates_params == {"metrics"}
        assert display_tags(summary) == {"mutates-args"}

    def test_receiver_mutation_is_shared(self):
        summary = summary_of("""
            class Tracker:
                def fn(self, x):
                    self.seen = x
        """, qualname="fixture.Tracker.fn")
        assert "self" in summary.mutates_params
        assert display_tags(summary) == {"mutates-shared"}

    def test_init_self_stores_exempt(self):
        summary = summary_of("""
            class Tracker:
                def __init__(self, x):
                    self.seen = x
        """, qualname="fixture.Tracker.__init__")
        assert summary.mutates_params == frozenset()

    def test_mutator_method_on_parameter(self):
        summary = summary_of("""
            def fn(out, item):
                out.append(item)
        """)
        assert summary.mutates_params == {"out"}

    def test_io_builtin(self):
        summary = summary_of("""
            def fn(x):
                print(x)
        """)
        assert "io" in display_tags(summary)

    def test_effects_fold_through_calls(self):
        summary = summary_of("""
            def helper(cfg):
                return cfg.scale

            def fn(config):
                return helper(config)
        """)
        assert "reads-config" in display_tags(summary)
        assert "config" in summary.param_reads

    def test_trusted_external_stays_complete(self):
        summary = summary_of("""
            import math

            def fn(x):
                return math.sqrt(x)
        """)
        assert summary.complete
        assert display_tags(summary) == frozenset()

    def test_unresolved_call_marks_incomplete(self):
        summary = summary_of("""
            def fn(x):
                return mystery(x)
        """)
        assert not summary.complete


# ------------------------------------------------------ effect-undeclared


class TestEffectDeclarations:
    def test_accurate_declaration_is_clean(self):
        findings = effect_findings("""
            def fn(cfg):  # effect: reads-config
                return cfg.scale
        """)
        assert findings == []

    def test_stale_pure_declaration_flagged(self):
        findings = effect_findings("""
            def fn(cfg):  # effect: pure
                return cfg.scale
        """)
        assert rules_of(findings) == {RULE_UNDECLARED}
        assert "reads-config" in findings[0].message

    def test_unknown_tag_flagged(self):
        findings = effect_findings("""
            def fn(x):  # effect: reads-stuff
                return x
        """)
        assert rules_of(findings) == {RULE_UNDECLARED}
        assert "unknown effect tag" in findings[0].message

    def test_declaration_trusted_by_callers(self):
        # the caller sees the declared (empty) effect set, while the
        # declaring function itself is flagged against its inferred one
        source = """
            def helper(state):  # effect: pure
                return state.owner_map

            def fn(state):
                return helper(state)
        """
        project = project_of(("fixture", textwrap.dedent(source)))
        checker = EffectChecker(project)
        findings = checker.run()
        outer = checker.summary(project.functions["fixture.fn"])
        assert "reads-assignment" not in display_tags(outer)
        assert rules_of(findings) == {RULE_UNDECLARED}
        assert findings[0].line == 2  # helper's def line


# ----------------------------------------------------------- phase-impure


class TestPhasePurity:
    def test_fault_read_in_geometry_phase(self):
        findings = effect_findings("""
            def geometry_phase(draw):
                if draw.fault_plan:
                    return None
                return draw.vertices
        """)
        phase = [f for f in findings if f.rule == RULE_PHASE]
        assert len(phase) == 1
        assert "fault state" in phase[0].message
        assert phase[0].line == 3  # the offending read, not the def

    def test_reaches_through_helpers(self):
        findings = effect_findings("""
            def helper(state):
                return state.owner_map

            def geometry_phase(state):
                return helper(state)
        """)
        phase = [f for f in findings if f.rule == RULE_PHASE]
        assert len(phase) == 1
        assert "helper()" in phase[0].message
        assert "GPU-assignment" in phase[0].message

    def test_same_read_outside_phase_is_allowed(self):
        findings = effect_findings("""
            def composition_step(state):
                return state.owner_map
        """)
        assert [f for f in findings if f.rule == RULE_PHASE] == []

    def test_stale_pure_annotation_does_not_hide_it(self):
        findings = effect_findings("""
            def geometry_phase(draw):  # effect: pure
                return draw.fault_plan
        """)
        assert RULE_PHASE in rules_of(findings)
        assert RULE_UNDECLARED in rules_of(findings)

    def test_per_line_suppression_via_deep_lint(self, tmp_path):
        target = tmp_path / "phases.py"
        target.write_text(textwrap.dedent("""
            def geometry_phase(draw):
                probe = draw.fault_plan  # simlint: disable=phase-impure
                return probe
        """))
        findings = lint_paths([target], deep=True)
        assert [f for f in findings if f.rule == RULE_PHASE] == []


# -------------------------------------------------------------- hot-alloc


class TestHotAlloc:
    def hot_findings(self, source, path="raster/kernels.py",
                     name="kernels", extra=()):
        project = project_of((name, path, source), *extra)
        return [f for f in HotAllocChecker(project).run()
                if f.rule == RULE_HOT_ALLOC]

    def test_constant_list_in_fragment_phase(self):
        findings = self.hot_findings("""
            def fragment_phase(frags):
                swap = [0, 2, 1]
                return frags, swap
        """)
        assert len(findings) == 1
        assert "list literal" in findings[0].message

    def test_reachable_helper_is_hot(self):
        findings = self.hot_findings("""
            def helper(frags):
                lut = {0: 1}
                return lut

            def fragment_phase(frags):
                return helper(frags)
        """)
        assert len(findings) == 1
        assert "dict literal" in findings[0].message

    def test_nonconstant_list_outside_loop_allowed(self):
        findings = self.hot_findings("""
            def fragment_phase(frags):
                pair = [frags.a, frags.b]
                return pair
        """)
        assert findings == []

    def test_nonconstant_list_inside_loop_flagged(self):
        findings = self.hot_findings("""
            def fragment_phase(frags):
                out = None
                for frag in frags:
                    out = [frag.r, frag.g]
                return out
        """)
        assert len(findings) == 1
        assert "inside a loop body" in findings[0].message

    def test_comprehension_only_flagged_in_loop(self):
        clean = self.hot_findings("""
            def fragment_phase(frags):
                return [f.depth for f in frags]
        """)
        assert clean == []
        looped = self.hot_findings("""
            def fragment_phase(frags):
                total = 0
                for tile in frags:
                    total += sum(f.depth for f in tile)
                return total
        """)
        assert len(looped) == 1
        assert "comprehension" in looped[0].message

    def test_constant_numpy_constructor(self):
        findings = self.hot_findings("""
            import numpy as np

            def fragment_phase(frags):
                z = np.zeros(4)
                return frags + z
        """)
        assert len(findings) == 1
        assert "np.zeros" in findings[0].message

    def test_data_dependent_numpy_constructor_allowed(self):
        findings = self.hot_findings("""
            import numpy as np

            def fragment_phase(frags, n):
                return np.zeros(n)
        """)
        assert findings == []

    def test_loop_called_scope_function_is_hot(self):
        findings = self.hot_findings("""
            def make_swap():
                return [0, 2, 1]
        """, extra=[("driver", """
            from kernels import make_swap

            def run(draws):
                for draw in draws:
                    make_swap()
        """)])
        assert len(findings) == 1
        assert "called per-iteration from run()" in findings[0].message

    def test_cold_module_not_scanned(self):
        project = project_of(("util", "util.py", """
            def fragment_phase(frags):
                return [0, 2, 1]
        """))
        # the function is named fragment_phase but lives outside the
        # raster/shading tier, so the allocation lint does not apply
        assert HotAllocChecker(project).run() == []


# ------------------------------------------------------ seeded mutations


def _copy_src_repro(tmp_path):
    tree = tmp_path / "repro"
    shutil.copytree(REPO_SRC, tree)
    return tree


def _mutate(tree, relative, old, new):
    target = tree / relative
    source = target.read_text()
    mutated = source.replace(old, new)
    assert mutated != source, f"mutation anchor vanished from {relative}"
    target.write_text(mutated)


class TestEffectsMeta:
    def test_fault_read_in_geometry_phase_is_found(self, tmp_path):
        tree = _copy_src_repro(tmp_path)
        _mutate(tree, "render/phases.py",
                "    if draw.num_triangles == 0:",
                "    _probe = draw.fault_plan\n"
                "    if draw.num_triangles == 0:")
        findings = [f for f in lint_paths([tree], deep=True)
                    if f.rule == RULE_PHASE]
        assert findings, "seeded fault-state read not detected"
        assert all(f.path.endswith("phases.py") for f in findings)
        assert any("fault" in f.message for f in findings)

    def test_stale_pure_annotation_is_found(self, tmp_path):
        tree = _copy_src_repro(tmp_path)
        _mutate(tree, "render/phases.py",
                "def fragment_phase(artifact: DrawArtifact, "
                "draw: DrawCommand,",
                "def fragment_phase(artifact: DrawArtifact,  # effect: pure\n"
                "                   draw: DrawCommand,")
        findings = [f for f in lint_paths([tree], deep=True)
                    if f.rule == RULE_UNDECLARED]
        assert findings, "seeded stale annotation not detected"
        assert any("fragment_phase()" in f.message for f in findings)

    def test_hot_path_allocation_is_found(self, tmp_path):
        tree = _copy_src_repro(tmp_path)
        _mutate(tree, "raster/rasterizer.py",
                "depth = depth[_WINDING_SWAP]",
                "depth = depth[[0, 2, 1]]")
        findings = [f for f in lint_paths([tree], deep=True)
                    if f.rule == RULE_HOT_ALLOC]
        assert findings, "seeded per-call allocation not detected"
        assert findings[0].path.endswith("rasterizer.py")
        assert findings[0].severity == "warning"
