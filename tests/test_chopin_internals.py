"""CHOPIN scheme internals: assignment pass, prep caching, knob effects."""

import numpy as np
import pytest

from repro.core.workflow import GroupMode
from repro.harness import make_setup
from repro.sfr import Chopin, ChopinRoundRobin, ChopinWithScheduler
from repro.sfr.chopin import clear_chopin_cache
from repro.traces import load_benchmark


@pytest.fixture(scope="module")
def setup():
    return make_setup("tiny", num_gpus=8)


@pytest.fixture(scope="module")
def trace():
    return load_benchmark("cod2", "tiny")


class TestAssignment:
    def test_deterministic(self, setup, trace):
        scheme = ChopinWithScheduler(setup.config, setup.costs)
        draws = trace.frame.draws[:40]
        first = scheme._assign_group(draws)
        second = scheme._assign_group(draws)
        assert first == second

    def test_all_gpus_used_on_big_groups(self, setup, trace):
        scheme = ChopinWithScheduler(setup.config, setup.costs)
        assignment, _ = scheme._assign_group(trace.frame.draws[:64])
        assert set(assignment) == set(range(8))

    def test_issue_times_paced(self, setup, trace):
        scheme = ChopinWithScheduler(setup.config, setup.costs)
        _, issue_times = scheme._assign_group(trace.frame.draws[:10])
        spacing = np.diff(issue_times)
        assert np.allclose(spacing, setup.costs.draw_issue_cost)

    def test_round_robin_ignores_sizes(self, setup, trace):
        scheme = ChopinRoundRobin(setup.config, setup.costs)
        assignment, _ = scheme._assign_group(trace.frame.draws[:16])
        assert assignment == [i % 8 for i in range(16)]

    def test_unknown_scheduler_rejected(self, setup):
        from repro.errors import SchedulingError
        with pytest.raises(SchedulingError):
            Chopin(setup.config, setup.costs, draw_scheduler="magic")

    def test_least_remaining_balances_triangles(self, setup, trace):
        scheme = ChopinWithScheduler(setup.config, setup.costs)
        draws = [d for d in trace.frame.draws if not d.transparent][:80]
        assignment, _ = scheme._assign_group(draws)
        loads = [0] * 8
        for draw, gpu in zip(draws, assignment):
            loads[gpu] += draw.num_triangles
        assert max(loads) <= np.mean(loads) * 1.6


class TestFunctionalPrep:
    def test_prep_cached_across_variants(self, setup, trace):
        clear_chopin_cache()
        naive = Chopin(setup.config, setup.costs)
        scheduled = ChopinWithScheduler(setup.config, setup.costs)
        prep_a = naive._functional_pass(trace)
        prep_b = scheduled._functional_pass(trace)
        assert prep_a is prep_b  # same scheduler kind -> shared cache entry

    def test_round_robin_gets_different_prep(self, setup, trace):
        naive = Chopin(setup.config, setup.costs)
        rr = ChopinRoundRobin(setup.config, setup.costs)
        assert naive._functional_pass(trace) \
            is not rr._functional_pass(trace)

    def test_prep_group_modes_cover_frame(self, setup, trace):
        prep = ChopinWithScheduler(setup.config,
                                   setup.costs)._functional_pass(trace)
        draws_covered = 0
        for group_prep in prep.groups:
            draws_covered += group_prep.plan.group.num_draws
        assert draws_covered == trace.frame.num_draws

    def test_opaque_groups_have_region_matrix(self, setup, trace):
        prep = ChopinWithScheduler(setup.config,
                                   setup.costs)._functional_pass(trace)
        for group_prep in prep.groups:
            if group_prep.mode is GroupMode.OPAQUE_PARALLEL:
                matrix = group_prep.region_pixels
                assert matrix.shape == (8, 8)
                assert (np.diag(matrix) == 0).all()
                assert (matrix >= 0).all()

    def test_transparent_groups_have_tree(self, setup, trace):
        prep = ChopinWithScheduler(setup.config,
                                   setup.costs)._functional_pass(trace)
        transparent = [gp for gp in prep.groups
                       if gp.mode is GroupMode.TRANSPARENT_PARALLEL]
        assert transparent, "trace should contain transparent groups"
        for gp in transparent:
            merges = sum(len(level) for level in gp.tree_levels)
            assert merges == 7  # n-1 pair merges for 8 GPUs
            assert len(gp.scatter_pixels) == 8


class TestKnobs:
    def test_threshold_zero_accelerates_everything(self, trace):
        lo = make_setup("tiny", composition_threshold=1)
        scheme = ChopinWithScheduler(lo.config, lo.costs)
        prep = scheme._functional_pass(trace)
        modes = {gp.mode for gp in prep.groups}
        # only groups *forced* to duplicate (depth-write off etc.) remain
        duplicated = [gp for gp in prep.groups
                      if gp.mode is GroupMode.DUPLICATE]
        for gp in duplicated:
            assert (not gp.plan.group.depth_write
                    or gp.plan.group.num_triangles == 0
                    or not gp.plan.group.transparent)
        assert GroupMode.OPAQUE_PARALLEL in modes

    def test_huge_threshold_duplicates_everything(self, trace):
        hi = make_setup("tiny", composition_threshold=10**9)
        scheme = ChopinWithScheduler(hi.config, hi.costs)
        prep = scheme._functional_pass(trace)
        assert all(gp.mode is GroupMode.DUPLICATE for gp in prep.groups)
        # Degenerates to conventional SFR rendering. It stays somewhat
        # faster than the duplication *scheme* because it pays neither the
        # RT-switch broadcasts nor the inter-segment barriers.
        from repro.sfr import PrimitiveDuplication
        dup = PrimitiveDuplication(hi.config, hi.costs).run(trace)
        chopin = scheme.run(trace)
        assert 0.6 * dup.frame_cycles <= chopin.frame_cycles \
            <= 1.05 * dup.frame_cycles
        assert chopin.stats.total_triangles == dup.stats.total_triangles

    def test_update_interval_changes_assignment(self, trace):
        fine = make_setup("tiny", scheduler_update_interval=64)
        coarse = make_setup("tiny", scheduler_update_interval=65536)
        draws = trace.frame.draws[:120]
        fine_assign, _ = ChopinWithScheduler(
            fine.config, fine.costs)._assign_group(draws)
        coarse_assign, _ = ChopinWithScheduler(
            coarse.config, coarse.costs)._assign_group(draws)
        assert fine_assign != coarse_assign

    def test_retained_fraction_slows_chopin(self, trace):
        base = make_setup("tiny")
        hurt = make_setup("tiny", retained_cull_fraction=0.4)
        fast = ChopinWithScheduler(base.config, base.costs).run(trace)
        slow = ChopinWithScheduler(hurt.config, hurt.costs).run(trace)
        assert slow.frame_cycles > fast.frame_cycles
        assert slow.stats.total_fragments_shaded \
            > fast.stats.total_fragments_shaded
