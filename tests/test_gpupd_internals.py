"""GPUpd internals: projection analysis, batching, overlap computation."""

import numpy as np
import pytest

from repro.geometry import DrawCommand
from repro.harness import make_setup
from repro.raster.tiles import TileGrid
from repro.sfr import GPUpd
from repro.sfr.gpupd import projection_analysis, triangle_owner_matrix
from repro.traces import load_benchmark


def ndc_triangle(x0, y0, x1, y1, x2, y2, depth=0.5):
    positions = np.array([[[x0, y0, depth], [x1, y1, depth],
                           [x2, y2, depth]]], dtype=np.float32)
    colors = np.ones((1, 3, 4), dtype=np.float32)
    return DrawCommand(draw_id=0, positions=positions, colors=colors)


class TestOwnerMatrix:
    def test_small_triangle_single_owner(self):
        grid = TileGrid(64, 64, tile_size=16)
        draw = ndc_triangle(-0.9, 0.9, -0.85, 0.9, -0.9, 0.85)
        owners = triangle_owner_matrix(draw, grid, 4)
        assert owners.shape == (1, 4)
        assert owners.sum() == 1

    def test_fullscreen_triangle_owned_by_all(self):
        grid = TileGrid(64, 64, tile_size=16)
        draw = ndc_triangle(-3, -3, 3, -3, 0, 3)
        owners = triangle_owner_matrix(draw, grid, 4)
        assert owners.sum() == 4

    def test_offscreen_triangle_owned_by_none(self):
        grid = TileGrid(64, 64, tile_size=16)
        draw = ndc_triangle(2.0, 2.0, 2.5, 2.0, 2.0, 2.5)
        owners = triangle_owner_matrix(draw, grid, 4)
        assert owners.sum() == 0

    def test_straddling_triangle_owned_by_both(self):
        grid = TileGrid(64, 64, tile_size=32)  # 2x2 tiles
        draw = ndc_triangle(-0.2, 0.6, 0.2, 0.6, 0.0, 0.9)
        owners = triangle_owner_matrix(draw, grid, 2)
        assert owners[0].sum() == 2


class TestProjectionAnalysis:
    def test_owned_counts_cover_all_primitives(self):
        setup = make_setup("tiny", num_gpus=8)
        trace = load_benchmark("cod2", "tiny")
        analysis = projection_analysis(trace, setup.config)
        assert len(analysis) == trace.frame.num_draws
        for draw, proj in zip(trace.frame.draws, analysis):
            # overlap duplicates primitives, never loses onscreen ones
            assert proj.owned_counts.sum() >= 0
            assert proj.owned_counts.sum() <= draw.num_triangles * 8

    def test_distribution_diagonal_zero(self):
        setup = make_setup("tiny", num_gpus=4)
        trace = load_benchmark("cod2", "tiny")
        for proj in projection_analysis(trace, setup.config):
            assert (np.diag(proj.dist_counts) == 0).all()

    def test_distribution_bounded_by_ownership(self):
        setup = make_setup("tiny", num_gpus=4)
        trace = load_benchmark("cod2", "tiny")
        for proj in projection_analysis(trace, setup.config):
            assert proj.dist_counts.sum() <= proj.owned_counts.sum()

    def test_cached_per_trace(self):
        setup = make_setup("tiny", num_gpus=8)
        trace = load_benchmark("cod2", "tiny")
        assert projection_analysis(trace, setup.config) \
            is projection_analysis(trace, setup.config)


class TestBatching:
    def test_batches_partition_segment(self):
        setup = make_setup("tiny", num_gpus=8)
        trace = load_benchmark("cod2", "tiny")
        scheme = GPUpd(setup.config, setup.costs, batch_primitives=16)
        batches = scheme._make_batches(trace.frame, 0, 40)
        assert batches[0][0] == 0 and batches[-1][1] == 40
        for (a, b), (c, d) in zip(batches, batches[1:]):
            assert b == c

    def test_batch_size_respected(self):
        setup = make_setup("tiny", num_gpus=8)
        trace = load_benchmark("cod2", "tiny")
        scheme = GPUpd(setup.config, setup.costs, batch_primitives=50)
        batches = scheme._make_batches(trace.frame, 0, 60)
        for start, end in batches[:-1]:
            triangles = sum(trace.frame.draws[i].num_triangles
                            for i in range(start, end))
            assert triangles >= 50 or end - start == 1

    def test_smaller_batches_slow_realistic_gpupd(self):
        """More batches => more sequential distribution turns => slower."""
        setup = make_setup("tiny", num_gpus=8)
        trace = load_benchmark("cod2", "tiny")
        coarse = GPUpd(setup.config, setup.costs,
                       batch_primitives=4096).run(trace)
        fine = GPUpd(setup.config, setup.costs,
                     batch_primitives=4).run(trace)
        assert fine.frame_cycles > coarse.frame_cycles
