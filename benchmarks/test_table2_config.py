"""Table II: the simulated architecture configuration."""

from repro.harness import experiments as E
from repro.harness import report as R

from conftest import emit, run_once


def test_table2_config(benchmark, reports_dir):
    table = run_once(benchmark, E.table2_config)
    assert table["Number of GPUs"] == "8"
    assert table["Inter-GPU bandwidth"] == "64 GB/s"
    assert table["Inter-GPU latency"] == "200 cycles"
    emit(reports_dir, "table2",
         R.render_dict(table, "Table II: simulated architecture"))
