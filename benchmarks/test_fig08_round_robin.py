"""Fig 8: naive round-robin draw scheduling (load-imbalance strawman).

Paper shape: round-robin CHOPIN loses most of the scheduler's benefit.
"""

from repro.harness import experiments as E
from repro.harness import report as R

from conftest import FULL_BENCHMARKS, emit, run_once


def test_fig8_round_robin(benchmark, reports_dir):
    def experiment():
        table = E.fig8_round_robin(benchmarks=FULL_BENCHMARKS)
        full = E.fig13_performance(benchmarks=FULL_BENCHMARKS)
        for bench in table:
            table[bench]["chopin+sched"] = full[bench]["chopin+sched"]
        return table

    table = run_once(benchmark, experiment)
    means = table["GMean"]
    assert means["chopin-rr"] < means["chopin+sched"]
    emit(reports_dir, "fig08",
         R.render_speedups(table, "Fig 8: round-robin scheduling overhead"))
