"""Fig 22: composition-group size threshold sweep.

Paper shape: performance is insensitive to the threshold because group
sizes are bimodal; at 4096, ~6.5 groups covering ~92% of triangles are
accelerated.
"""

from repro.harness import experiments as E
from repro.harness import report as R

from conftest import SWEEP_BENCHMARKS, emit, run_once


def test_fig22_threshold(benchmark, reports_dir):
    def experiment():
        speed = E.fig22_threshold(benchmarks=SWEEP_BENCHMARKS)
        coverage = E.fig22_coverage(benchmarks=SWEEP_BENCHMARKS,
                                    thresholds=(4096, 16384))
        return speed, coverage

    speed, coverage = run_once(benchmark, experiment)
    values = [speed[t]["chopin+sched"] for t in (256, 1024, 4096, 16384)]
    assert max(values) / min(values) < 1.35   # insensitive parameter
    assert coverage[4096]["triangle_coverage"] > 0.6   # paper: 92.4%
    assert coverage[16384]["triangle_coverage"] \
        <= coverage[4096]["triangle_coverage"]
    text = R.render_sweep(speed, "threshold",
                          "Fig 22: composition threshold sweep "
                          "(paper-scale triangles)")
    text += "\n\n" + R.render_sweep(
        {t: coverage[t] for t in coverage}, "threshold",
        "Accelerated-group coverage (paper at 4096: 6.5 groups, 92.44%)")
    emit(reports_dir, "fig22", text)
