"""Fig 14: execution-cycle breakdown by pipeline stage.

Paper shape: duplication dominated by redundant geometry; GPUpd adds
projection + distribution; CHOPIN replaces them with a small composition
share.
"""

from repro.harness import experiments as E
from repro.harness import report as R
from repro.stats import (STAGE_COMPOSITION, STAGE_DISTRIBUTION,
                         STAGE_GEOMETRY)

from conftest import FULL_BENCHMARKS, emit, run_once


def test_fig14_breakdown(benchmark, reports_dir):
    table = run_once(
        benchmark, lambda: E.fig14_breakdown(benchmarks=FULL_BENCHMARKS))
    for bench in FULL_BENCHMARKS:
        dup = table[bench]["duplication"]
        chopin = table[bench]["chopin+sched"]
        gpupd = table[bench]["gpupd"]
        assert chopin[STAGE_GEOMETRY] < dup[STAGE_GEOMETRY] * 0.5
        assert gpupd[STAGE_DISTRIBUTION] > 0
        assert chopin[STAGE_COMPOSITION] > 0
        assert chopin[STAGE_DISTRIBUTION] == 0
    emit(reports_dir, "fig14", R.render_fig14(table))
