"""Fig 15: fragments passing depth/stencil tests.

Paper shape: CHOPIN processes only a few percent more fragments than
duplication (7.1% average at 8 GPUs, 18% worst case on ut3), because
front-to-back order is retained within each GPU.
"""

import numpy as np

from repro.harness import experiments as E
from repro.harness import report as R

from conftest import FULL_BENCHMARKS, emit, run_once


def test_fig15_depth_test(benchmark, reports_dir):
    table = run_once(
        benchmark, lambda: E.fig15_depth_test(benchmarks=FULL_BENCHMARKS))
    ratios = []
    for bench in FULL_BENCHMARKS:
        assert table[bench]["duplication"]["total"] == 1.0
        ratio = table[bench]["chopin+sched"]["total"]
        assert 1.0 <= ratio < 1.6
        # most passing fragments went through the early test (paper obs.)
        assert table[bench]["chopin+sched"]["early"] \
            > table[bench]["chopin+sched"]["other"]
        ratios.append(ratio)
    assert float(np.mean(ratios)) < 1.35   # paper avg: 1.07
    emit(reports_dir, "fig15", R.render_fig15(table))
