"""Ablation: GPUpd's own optimizations (batching granularity + runahead).

The paper models "both optimizations: batching and runahead execution".
This ablation isolates each: coarser batches amortize the sequential
per-source turns; runahead hides distribution behind projection/rendering.
"""

from repro.harness import make_setup
from repro.harness import report as R
from repro.sfr import GPUpd
from repro.traces import load_benchmark

from conftest import emit, run_once


def test_ablation_gpupd_optimizations(benchmark, reports_dir):
    def experiment():
        setup = make_setup("tiny", num_gpus=8)
        trace = load_benchmark("cod2", "tiny")
        table = {}
        for batch in (4, 32, 256):
            for runahead in (False, True):
                scheme = GPUpd(setup.config, setup.costs,
                               batch_primitives=batch, runahead=runahead)
                cycles = scheme.run(trace).frame_cycles
                label = f"batch {batch}{'+runahead' if runahead else ''}"
                table[label] = {"frame cycles": round(cycles)}
        return table

    table = run_once(benchmark, experiment)
    # runahead always helps (or at least never hurts) at fixed batch size
    for batch in (4, 32, 256):
        plain = table[f"batch {batch}"]["frame cycles"]
        opt = table[f"batch {batch}+runahead"]["frame cycles"]
        assert opt <= plain * 1.001
    # tiny batches pay many sequential turns
    assert table["batch 4+runahead"]["frame cycles"] \
        > table["batch 256+runahead"]["frame cycles"]
    emit(reports_dir, "ablation_gpupd_opts",
         R.render_keyed_matrix(table, "config",
                               "Ablation: GPUpd batching + runahead "
                               "(cod2, 8 GPUs)"))
