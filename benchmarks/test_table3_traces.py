"""Table III: the benchmark suite (paper-scale spec vs generated trace)."""

from repro.harness import experiments as E
from repro.harness import report as R

from conftest import FULL_BENCHMARKS, emit, run_once


def test_table3_traces(benchmark, reports_dir):
    rows = run_once(benchmark, E.table3_benchmarks)
    assert len(rows) == len(FULL_BENCHMARKS)
    by_name = {r["benchmark"]: r for r in rows}
    # paper-scale numbers are exact
    assert by_name["cod2"]["paper_triangles"] == 219_950
    assert by_name["grid"]["paper_draws"] == 2623
    # generated traces match the scaled spec exactly
    for row in rows:
        assert row["run_triangles"] == row["paper_triangles"] // 64
    emit(reports_dir, "table3", R.render_table3(rows))
