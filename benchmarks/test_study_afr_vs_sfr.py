"""Study: AFR vs SFR on an animated sequence (paper §I motivation).

AFR improves average frame rate but not instantaneous latency, and its
pacing jitters with per-frame cost variance (micro-stuttering); SFR
improves the latency of every frame. This regenerates that §I argument as
numbers on a synthetic gameplay sequence.
"""

from repro.harness import compare_afr_sfr, make_setup
from repro.harness import report as R
from repro.traces import TraceSpec, synthesize
from repro.traces.trace import Trace

from conftest import emit, run_once


def animated_trace(frames=10):
    import numpy as np
    rng = np.random.default_rng(31)
    parts = []
    for index in range(frames):
        spec = TraceSpec(name=f"f{index}", width=96, height=96,
                         num_draws=24,
                         num_triangles=int(rng.uniform(600, 2600)),
                         seed=1200 + index, cost_multiplier=4.0)
        parts.append(synthesize(spec).frame)
    return Trace(name="gameplay", width=96, height=96, frames=parts)


def test_study_afr_vs_sfr(benchmark, reports_dir):
    def experiment():
        return compare_afr_sfr(animated_trace(), make_setup("tiny",
                                                            num_gpus=4))

    report = run_once(benchmark, experiment)
    assert report["sfr_mean_latency"] < report["afr_mean_latency"]
    assert report["afr_total_cycles"] < report["sfr_total_cycles"]
    pretty = {k: (f"{v:,.0f}" if isinstance(v, float) and v > 100
                  else f"{v:.3f}" if isinstance(v, float) else str(v))
              for k, v in report.items()}
    emit(reports_dir, "study_afr_vs_sfr",
         R.render_dict(pretty, "Study: AFR vs SFR (4 GPUs, 10-frame "
                       "gameplay sequence)"))
