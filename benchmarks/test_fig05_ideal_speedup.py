"""Fig 5: potential of parallel image composition (idealized systems).

Paper shape: IdealCHOPIN ~1.31x gmean over duplication; idealizing GPUpd
helps but parallel composition has more headroom than sequential exchange.
"""

from repro.harness import experiments as E
from repro.harness import report as R

from conftest import FULL_BENCHMARKS, emit, run_once


def test_fig5_ideal_speedup(benchmark, reports_dir):
    table = run_once(
        benchmark, lambda: E.fig5_ideal_speedup(benchmarks=FULL_BENCHMARKS))
    means = table["GMean"]
    assert means["chopin-ideal"] > 1.1      # paper: 1.31x
    assert means["gpupd-ideal"] > means["gpupd"]
    emit(reports_dir, "fig05",
         R.render_speedups(table, "Fig 5: ideal-system speedups vs "
                           "duplication"))
