"""Fig 21: sensitivity to inter-GPU link latency.

Paper shape: CHOPIN is not significantly affected by latency, unlike
GPUpd, whose sequential primitive exchange is latency-bound.
"""

from repro.harness import experiments as E
from repro.harness import report as R

from conftest import SWEEP_BENCHMARKS, emit, run_once


def test_fig21_latency(benchmark, reports_dir):
    table = run_once(
        benchmark, lambda: E.fig21_latency(benchmarks=SWEEP_BENCHMARKS))
    chopin_loss = table[100]["chopin+sched"] / table[400]["chopin+sched"]
    gpupd_loss = table[100]["gpupd"] / table[400]["gpupd"]
    assert chopin_loss < 1.15              # CHOPIN barely affected
    assert gpupd_loss > chopin_loss        # GPUpd latency-bound
    emit(reports_dir, "fig21",
         R.render_sweep(table, "cycles", "Fig 21: inter-GPU latency sweep "
                        "(baseline: Table II duplication)"))
