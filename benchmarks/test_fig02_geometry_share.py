"""Fig 2: geometry-processing share of cycles in conventional SFR.

Paper shape: ~20% at 1 GPU rising to 60-80% at 8 GPUs — redundant geometry
does not scale with GPU count.
"""

from repro.harness import experiments as E
from repro.harness import report as R
from repro.stats import gmean

from conftest import FULL_BENCHMARKS, emit, run_once


def test_fig2_geometry_share(benchmark, reports_dir):
    shares = run_once(
        benchmark, lambda: E.fig2_geometry_share(benchmarks=FULL_BENCHMARKS))
    for bench in FULL_BENCHMARKS:
        per_n = shares[bench]
        assert per_n[1] < per_n[2] < per_n[4] < per_n[8]
    avg8 = gmean(shares[b][8] for b in FULL_BENCHMARKS)
    assert 0.4 < avg8 < 0.9  # paper: 60-80%
    emit(reports_dir, "fig02", R.render_fig2(shares))
