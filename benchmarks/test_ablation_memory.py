"""Ablation: per-GPU memory footprints behind the paper's design choices.

Quantifies §III-A's "large memory to buffer exchanged primitive IDs"
argument for GPUpd's sequential exchange, and §IV-A's extra-render-target
cost for CHOPIN's transparent groups. Reported at paper scale.
"""

from repro.core.memory import memory_comparison
from repro.harness import make_setup
from repro.harness import report as R
from repro.traces import load_benchmark

from conftest import emit, run_once


def test_ablation_memory(benchmark, reports_dir):
    def experiment():
        setup = make_setup("paper", num_gpus=8)
        trace = load_benchmark("cry", "paper")   # largest triangle count
        return {name: fp.as_dict()
                for name, fp in memory_comparison(trace,
                                                  setup.config).items()}

    table = run_once(benchmark, experiment)
    assert table["gpupd-unordered"]["reorder"] \
        > 5 * table["gpupd"]["staging"]
    assert table["chopin"]["extra_targets"] > 0
    pretty = {name: {k: f"{v / 1e6:.2f} MB" for k, v in row.items()}
              for name, row in table.items()}
    emit(reports_dir, "ablation_memory",
         R.render_keyed_matrix(pretty, "scheme",
                               "Ablation: per-GPU memory footprint "
                               "(cry, paper scale)"))
