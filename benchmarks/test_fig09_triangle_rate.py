"""Fig 9: per-draw triangle rate, geometry stage vs whole pipeline (cod2).

Paper shape: the two series track each other, justifying remaining
geometry-stage triangles as the scheduler's load estimate.
"""

from repro.harness import experiments as E
from repro.harness import report as R

from conftest import emit, run_once


def test_fig9_triangle_rate(benchmark, reports_dir):
    rows = run_once(benchmark, lambda: E.fig9_triangle_rate("tiny", "cod2"))
    assert len(rows) > 100
    correlation = E.fig9_correlation("tiny", "cod2")
    assert correlation > 0.2
    text = R.render_fig9(rows) + \
        f"\ngeometry-vs-pipeline rate correlation: {correlation:.3f}"
    emit(reports_dir, "fig09", text)
