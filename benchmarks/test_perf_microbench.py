"""Performance micro-benchmarks of the simulator's own substrates.

Unlike the figure benchmarks (which time one full experiment), these use
pytest-benchmark's statistical timing to track the hot paths' throughput:
the DES event loop, the rasterizer, the compositors, and a full scheme run.
Useful for catching performance regressions in the library itself.
"""

import numpy as np
import pytest

from repro.composition import SubImage, binary_swap, direct_send
from repro.geometry import BlendOp
from repro.harness import build_scheme, make_setup
from repro.harness.runner import clear_result_cache
from repro.raster.rasterizer import rasterize_triangle
from repro.sim import Simulator, Resource
from repro.traces import load_benchmark


def test_perf_des_event_throughput(benchmark):
    """Ping-pong 20k events through the kernel."""

    def run_sim():
        sim = Simulator()

        def proc():
            for _ in range(10_000):
                yield sim.timeout(1.0)

        sim.process(proc())
        sim.process(proc())
        return sim.run()

    result = benchmark(run_sim)
    assert result == 10_000


def test_perf_resource_contention(benchmark):
    """1k acquire/release cycles across 8 contending processes."""

    def run_sim():
        sim = Simulator()
        resource = Resource(sim)

        def worker():
            for _ in range(125):
                request = resource.request()
                yield request
                yield sim.timeout(1.0)
                resource.release(request)

        for _ in range(8):
            sim.process(worker())
        return sim.run()

    assert benchmark(run_sim) == 1000.0


def test_perf_rasterizer(benchmark):
    """Rasterize a 64x64-pixel triangle."""
    xy = np.array([[2, 2], [62, 4], [20, 60]], dtype=np.float32)
    depth = np.array([0.2, 0.4, 0.6], dtype=np.float32)
    colors = np.eye(3, 4, dtype=np.float32)

    frags = benchmark(rasterize_triangle, xy, depth, colors, 64, 64)
    assert frags.count > 500


def test_perf_direct_send_compositor(benchmark):
    rng = np.random.default_rng(0)
    images = [SubImage(color=rng.random((64, 64, 4), dtype=np.float32),
                       depth=rng.random((64, 64), dtype=np.float32),
                       touched=np.ones((64, 64), bool))
              for _ in range(8)]
    composed, _ = benchmark(direct_send, images)
    assert composed.shape == (64, 64)


def test_perf_binary_swap_compositor(benchmark):
    rng = np.random.default_rng(0)
    images = [SubImage(color=rng.random((64, 64, 4), dtype=np.float32),
                       depth=rng.random((64, 64), dtype=np.float32),
                       touched=np.ones((64, 64), bool))
              for _ in range(8)]
    composed, _ = benchmark(binary_swap, images, op=BlendOp.OVER)
    assert composed.shape == (64, 64)


def test_perf_chopin_timing_pass(benchmark):
    """The DES timing pass alone (functional prep cached beforehand)."""
    setup = make_setup("tiny", num_gpus=8)
    trace = load_benchmark("wolf", "tiny")
    scheme = build_scheme("chopin+sched", setup)
    prep = scheme._functional_pass(trace)   # warm the cache

    def timing_only():
        return scheme._timing_pass(trace, prep)

    result = benchmark(timing_only)
    assert result.frame_cycles > 0


def test_perf_full_scheme_run(benchmark):
    """End-to-end duplication run (uncached), the common usage pattern."""
    setup = make_setup("tiny", num_gpus=8)
    trace = load_benchmark("wolf", "tiny")

    def full_run():
        clear_result_cache()
        return build_scheme("duplication", setup).run(trace)

    result = benchmark.pedantic(full_run, rounds=3, iterations=1)
    assert result.frame_cycles > 0
