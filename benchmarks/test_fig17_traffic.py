"""Fig 17: parallel image composition traffic load.

Paper shape: ~51.66 MB average per frame; grid is the outlier (131.92 MB)
because of its many large triangles.
"""

from repro.harness import experiments as E
from repro.harness import report as R

from conftest import FULL_BENCHMARKS, emit, run_once


def test_fig17_traffic(benchmark, reports_dir):
    traffic = run_once(
        benchmark, lambda: E.fig17_traffic(benchmarks=FULL_BENCHMARKS))
    assert traffic["grid"] == max(traffic[b] for b in FULL_BENCHMARKS)
    assert 5.0 < traffic["Avg"] < 200.0    # paper: 51.66 MB
    emit(reports_dir, "fig17", R.render_fig17(traffic))
