"""Fig 13: the headline result — all schemes on the 8-GPU Table II system.

Paper shape: CHOPIN+CompSched ~1.25x gmean (max 1.56x) over duplication;
GPUpd comparable to duplication; CHOPIN+CompSched within ~5% of IdealCHOPIN.
"""

from repro.harness import experiments as E
from repro.harness import report as R

from conftest import FULL_BENCHMARKS, emit, run_once


def test_fig13_performance(benchmark, reports_dir):
    table = run_once(
        benchmark, lambda: E.fig13_performance(benchmarks=FULL_BENCHMARKS))
    means = table["GMean"]
    # qualitative shape (see EXPERIMENTS.md for measured-vs-paper numbers)
    assert 1.0 < means["chopin+sched"] < 1.6       # paper: 1.25
    assert means["chopin+sched"] >= means["chopin"] * 0.99
    assert means["chopin-ideal"] >= means["chopin+sched"]
    assert means["chopin-ideal"] / means["chopin+sched"] < 1.15  # ~5% gap
    assert 0.6 < means["gpupd"] < 1.3              # paper: ~1.0
    best = max(table[b]["chopin+sched"] for b in FULL_BENCHMARKS)
    assert best > 1.3                              # paper: up to 1.56
    emit(reports_dir, "fig13",
         R.render_speedups(table, "Fig 13: 8-GPU speedup vs primitive "
                           "duplication"))
