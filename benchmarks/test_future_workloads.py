"""Future-workload study (extends §VI-G): CHOPIN's lead vs geometric detail.

The paper argues triangle counts grow much faster than resolutions, which
favours sort-last schemes. Here we *measure* it: sweeping the detail
factor of a fixed-resolution workload, CHOPIN's speedup over duplication
grows; on the opposite (fragment-bound) extreme, sort-first-style schemes
are the right choice.
"""

from repro.harness import make_setup, run
from repro.harness import report as R
from repro.traces.stress import fragment_bound, micro_triangle

from conftest import emit, run_once


def test_future_workloads(benchmark, reports_dir):
    def experiment():
        setup = make_setup("tiny", num_gpus=8)
        table = {}
        for detail in (1.0, 2.0, 4.0):
            trace = micro_triangle(detail=detail)
            dup = run("duplication", trace, setup)
            chopin = run("chopin+sched", trace, setup)
            table[f"detail {detail:g}x"] = {
                "triangles": trace.num_triangles,
                "chopin+sched": dup.frame_cycles / chopin.frame_cycles,
            }
        frag = fragment_bound()
        dup = run("duplication", frag, setup)
        chopin = run("chopin+sched", frag, setup)
        table["fragment-bound"] = {
            "triangles": frag.num_triangles,
            "chopin+sched": dup.frame_cycles / chopin.frame_cycles,
        }
        return table

    table = run_once(benchmark, experiment)
    sweep = [table[f"detail {d:g}x"]["chopin+sched"] for d in (1.0, 2.0, 4.0)]
    assert sweep == sorted(sweep), "CHOPIN's lead must grow with detail"
    assert table["fragment-bound"]["chopin+sched"] < sweep[0], \
        "fragment-bound workloads are the sort-first regime"
    emit(reports_dir, "future_workloads",
         R.render_speedups(table, "Future workloads: CHOPIN speedup vs "
                           "geometric detail (fixed resolution)"))
