"""Ablation: draw-command scheduler policies (§IV-D design space).

Round-robin (no information) < OO-VR-style sampled rates (static c1/c2
from the first draws — the §IV-D strawman) < least-remaining-triangles
(CHOPIN's hardware-feasible feedback heuristic) <= oracle LPT (offline, by
estimated total draw cost — unrealizable in hardware). The gap between the
last two bounds how much headroom the triangle heuristic leaves on the
table.
"""

from repro.harness import make_setup, run_benchmark
from repro.harness import report as R
from repro.stats import gmean

from conftest import SWEEP_BENCHMARKS, emit, run_once

POLICIES = ("chopin-rr", "chopin-sampled", "chopin+sched",
            "chopin-oracle")


def test_ablation_schedulers(benchmark, reports_dir):
    def experiment():
        setup = make_setup("tiny", num_gpus=8)
        table = {}
        for bench in SWEEP_BENCHMARKS:
            base = run_benchmark("duplication", bench, setup)
            table[bench] = {
                policy: base.frame_cycles
                / run_benchmark(policy, bench, setup).frame_cycles
                for policy in POLICIES
            }
        table["GMean"] = {p: gmean(table[b][p] for b in SWEEP_BENCHMARKS)
                          for p in POLICIES}
        return table

    table = run_once(benchmark, experiment)
    means = table["GMean"]
    assert means["chopin-rr"] <= means["chopin+sched"] * 1.02
    assert means["chopin-sampled"] <= means["chopin+sched"] * 1.05
    assert means["chopin-oracle"] >= means["chopin+sched"] * 0.98
    emit(reports_dir, "ablation_schedulers",
         R.render_speedups(table, "Ablation: draw-command scheduler "
                           "policies (speedup vs duplication)"))
