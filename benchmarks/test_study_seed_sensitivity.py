"""Study: robustness of the headline result to trace randomness.

Every trace here is synthetic, so the reproduction's conclusions should
not depend on the particular random sample the seeds produced. This study
regenerates three benchmarks with three different seeds each and checks the
CHOPIN-vs-duplication verdict is stable.
"""

import numpy as np

from repro.harness import make_setup, run
from repro.harness import report as R
from repro.traces import load_benchmark_variant

from conftest import emit, run_once

BENCHES = ("cod2", "stal", "wolf")
SEED_OFFSETS = (0, 101, 202)


def test_study_seed_sensitivity(benchmark, reports_dir):
    def experiment():
        setup = make_setup("tiny", num_gpus=8)
        table = {}
        for bench in BENCHES:
            speedups = []
            for offset in SEED_OFFSETS:
                trace = load_benchmark_variant(bench, "tiny", offset)
                dup = run("duplication", trace, setup)
                chopin = run("chopin+sched", trace, setup)
                speedups.append(dup.frame_cycles / chopin.frame_cycles)
            table[bench] = {
                "mean": float(np.mean(speedups)),
                "min": float(np.min(speedups)),
                "max": float(np.max(speedups)),
                "rel spread": float((np.max(speedups) - np.min(speedups))
                                    / np.mean(speedups)),
            }
        return table

    table = run_once(benchmark, experiment)
    for bench in BENCHES:
        # the verdict never flips across seeds for these benchmarks
        assert table[bench]["min"] > 0.9
        # and the spread stays moderate
        assert table[bench]["rel spread"] < 0.5
    emit(reports_dir, "study_seed_sensitivity",
         R.render_keyed_matrix(table, "bench",
                               "Study: CHOPIN+ speedup across 3 generator "
                               "seeds per benchmark"))
