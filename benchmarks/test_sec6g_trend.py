"""Section VI-G: primitive vs fragment processing growth trend.

Paper shape: as geometric detail scales (triangle counts grow faster than
resolutions), primitive processing overtakes fragment processing —
favouring sort-last schemes like CHOPIN.
"""

from repro.harness import experiments as E
from repro.harness import report as R

from conftest import emit, run_once


def test_sec6g_trend(benchmark, reports_dir):
    rows = run_once(
        benchmark,
        lambda: E.sec6g_workload_trend(benchmark="cry",
                                       detail_factors=(1.0, 2.0, 4.0, 8.0)))
    shares = [r["primitive_share"] for r in rows]
    assert shares == sorted(shares)
    assert shares[-1] > 0.5   # primitive time eventually dominates
    body = [[r["detail_factor"], r["primitive_cycles"],
             r["fragment_cycles"], f"{100 * r['primitive_share']:.1f}%"]
            for r in rows]
    emit(reports_dir, "sec6g",
         R.render_table(["detail", "prim cycles", "frag cycles",
                         "prim share"], body,
                        "Section VI-G: primitive vs fragment growth"))
