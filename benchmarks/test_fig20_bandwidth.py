"""Fig 20: sensitivity to inter-GPU link bandwidth.

Paper shape: CHOPIN's performance scales with bandwidth (baseline fixed at
the Table II configuration).
"""

from repro.harness import experiments as E
from repro.harness import report as R

from conftest import SWEEP_BENCHMARKS, emit, run_once


def test_fig20_bandwidth(benchmark, reports_dir):
    table = run_once(
        benchmark, lambda: E.fig20_bandwidth(benchmarks=SWEEP_BENCHMARKS))
    chopin = [table[bw]["chopin+sched"] for bw in (16.0, 32.0, 64.0, 128.0)]
    assert chopin == sorted(chopin)
    assert chopin[-1] / chopin[0] > 1.05
    emit(reports_dir, "fig20",
         R.render_sweep(table, "GB/s", "Fig 20: inter-GPU bandwidth sweep "
                        "(baseline: Table II duplication)"))
