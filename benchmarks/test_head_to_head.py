"""Composition head-to-head: DES transports vs analytic exchanges.

Not a paper figure — the PR 10 scaling study. chopin (gated direct-send),
chopin+sched (§IV-E pairing) and dfb (asynchronous tile streaming) are
simulated; direct-send / binary-swap / radix-k are the classic synchronous
frame-end exchanges, modeled analytically on the composition-free
chopin-ideal schedule. Expected shape: the DES transports hide composition
behind rendering (nonzero overlap cycles), the analytic exchanges cannot
(overlap is zero by construction), and dfb trails the scheduled exchange
at small tile counts because every tile message pays a head latency.
"""

from repro.harness import experiments as E
from repro.harness import report as R

from conftest import emit, run_once

GPU_COUNTS = (8, 16, 32, 64)


def test_head_to_head(benchmark, reports_dir):
    table = run_once(
        benchmark,
        lambda: E.composition_head_to_head(benchmarks=("wolf", "cod2"),
                                           gpu_counts=GPU_COUNTS))
    for workload, counts in table.items():
        for n, row in counts.items():
            # every DES transport overlaps composition behind rendering;
            # the analytic frame-end exchanges never do
            for scheme in E.HEAD_TO_HEAD_SCHEMES:
                assert row[scheme]["comp_overlap_cycles"] > 0.0, \
                    (workload, n, scheme)
            for algorithm in E.EXCHANGE_ALGORITHMS:
                assert row[algorithm]["comp_overlap_cycles"] == 0.0
    # binary-swap never loses to direct-send on the analytic model
    # (fewer serialized messages per GPU at every count)
    for workload, counts in table.items():
        for n, row in counts.items():
            assert row["binary-swap"]["composition_cycles"] \
                <= row["direct-send"]["composition_cycles"] + 1e-9
    emit(reports_dir, "head_to_head", R.render_head_to_head(table))
