"""Fig 18: draw-scheduler statistics update frequency sweep.

Paper shape: raising the update interval from 1 to 1024 triangles costs
only a few percent (1.25x -> 1.22x gmean).
"""

from repro.harness import experiments as E
from repro.harness import report as R

from conftest import SWEEP_BENCHMARKS, emit, run_once


def test_fig18_update_freq(benchmark, reports_dir):
    table = run_once(
        benchmark,
        lambda: E.fig18_update_interval(benchmarks=SWEEP_BENCHMARKS))
    values = [table[i]["chopin+sched"] for i in (1, 256, 512, 1024)]
    assert max(values) / min(values) < 1.25   # insensitive parameter
    emit(reports_dir, "fig18",
         R.render_sweep(table, "interval", "Fig 18: scheduler update "
                        "interval (paper-scale triangles)"))
