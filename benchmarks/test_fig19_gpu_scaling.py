"""Fig 19: sensitivity to GPU count (2-16 GPUs).

Paper shape: CHOPIN's advantage over duplication grows with GPU count;
GPUpd's does not scale.
"""

from repro.harness import experiments as E
from repro.harness import report as R

from conftest import SWEEP_BENCHMARKS, emit, run_once


def test_fig19_gpu_scaling(benchmark, reports_dir):
    table = run_once(
        benchmark, lambda: E.fig19_gpu_scaling(benchmarks=SWEEP_BENCHMARKS))
    chopin = [table[n]["chopin+sched"] for n in (2, 4, 8, 16)]
    assert chopin[-1] > chopin[0]
    gpupd = [table[n]["gpupd"] for n in (2, 4, 8, 16)]
    # GPUpd does not scale: its advantage at 16 GPUs is no better than at 2
    assert gpupd[-1] < gpupd[0] * 1.25
    assert table[16]["chopin+sched"] > table[16]["gpupd"]
    emit(reports_dir, "fig19",
         R.render_sweep(table, "GPUs", "Fig 19: speedup vs duplication at "
                        "the same GPU count"))
