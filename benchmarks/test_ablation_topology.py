"""Ablation: interconnect topology — why CHOPIN assumes NVLink-class p2p.

Compares the DGX-like point-to-point fabric (the paper's §V assumption)
against a shared-bus fabric with 2 links' worth of aggregate bandwidth.
Bursty all-to-all phases (duplication's RT-switch broadcasts) collapse on
a shared medium, while CHOPIN's scheduled, temporally spread composition
degrades the least.
"""

from repro.harness import make_setup, run_benchmark
from repro.harness import report as R
from repro.stats import gmean

from conftest import SWEEP_BENCHMARKS, emit, run_once

SCHEMES = ("duplication", "gpupd", "chopin", "chopin+sched")


def test_ablation_topology(benchmark, reports_dir):
    def experiment():
        p2p = make_setup("tiny", num_gpus=8)
        bus = make_setup("tiny", num_gpus=8, topology="bus")
        table = {}
        for scheme in SCHEMES:
            slowdowns = []
            for bench in SWEEP_BENCHMARKS:
                fast = run_benchmark(scheme, bench, p2p)
                slow = run_benchmark(scheme, bench, bus)
                slowdowns.append(slow.frame_cycles / fast.frame_cycles)
            table[scheme] = {"bus slowdown": gmean(slowdowns)}
        return table

    table = run_once(benchmark, experiment)
    for scheme in SCHEMES:
        assert table[scheme]["bus slowdown"] >= 0.999  # bus never helps
    assert table["chopin+sched"]["bus slowdown"] \
        <= table["duplication"]["bus slowdown"] + 0.05
    emit(reports_dir, "ablation_topology",
         R.render_keyed_matrix(table, "scheme",
                               "Ablation: shared-bus fabric slowdown "
                               "(gmean vs point-to-point)"))
