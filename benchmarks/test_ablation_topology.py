"""Ablation: interconnect topology — why CHOPIN assumes NVLink-class p2p.

Compares the DGX-like point-to-point fabric (the paper's §V assumption)
against a shared-bus fabric with 2 links' worth of aggregate bandwidth.
Bursty all-to-all phases (duplication's RT-switch broadcasts) collapse on
a shared medium, while CHOPIN's scheduled, temporally spread composition
degrades the least.

The scaling ablation then takes the question to where congestion actually
bites (Distributed FrameBuffer line of work): ring and crossbar-switch
fabrics at 16/32/64 GPUs, recording per fabric the GPU count at which the
scheduled compositor overtakes primitive duplication — the *compositor
crossover point*.
"""

from repro.harness import make_setup, run_benchmark
from repro.harness import report as R
from repro.stats import gmean

from conftest import SWEEP_BENCHMARKS, emit, run_once

SCHEMES = ("duplication", "gpupd", "chopin", "chopin+sched")

#: scaling-ablation grid: fabric x GPU count (one benchmark to bound runtime)
SCALING_FABRICS = ("p2p", "ring", "switch")
SCALING_GPUS = (16, 32, 64)
SCALING_BENCHMARK = "wolf"


def test_ablation_topology(benchmark, reports_dir):
    def experiment():
        p2p = make_setup("tiny", num_gpus=8)
        bus = make_setup("tiny", num_gpus=8, topology="bus")
        table = {}
        for scheme in SCHEMES:
            slowdowns = []
            for bench in SWEEP_BENCHMARKS:
                fast = run_benchmark(scheme, bench, p2p)
                slow = run_benchmark(scheme, bench, bus)
                slowdowns.append(slow.frame_cycles / fast.frame_cycles)
            table[scheme] = {"bus slowdown": gmean(slowdowns)}
        return table

    table = run_once(benchmark, experiment)
    for scheme in SCHEMES:
        assert table[scheme]["bus slowdown"] >= 0.999  # bus never helps
    assert table["chopin+sched"]["bus slowdown"] \
        <= table["duplication"]["bus slowdown"] + 0.05
    emit(reports_dir, "ablation_topology",
         R.render_keyed_matrix(table, "scheme",
                               "Ablation: shared-bus fabric slowdown "
                               "(gmean vs point-to-point)"))


def test_ablation_topology_scaling(benchmark, reports_dir):
    def experiment():
        table = {}
        crossovers = {}
        for fabric in SCALING_FABRICS:
            row = {}
            prev_margin = None
            crossovers[fabric] = None
            for gpus in SCALING_GPUS:
                setup = make_setup("tiny", num_gpus=gpus, topology=fabric)
                base = run_benchmark("duplication", SCALING_BENCHMARK,
                                     setup)
                sched = run_benchmark("chopin+sched", SCALING_BENCHMARK,
                                      setup)
                speedup = base.frame_cycles / sched.frame_cycles
                row[f"{gpus} GPUs"] = speedup
                # compositor crossover: first GPU count where the
                # scheduled compositor overtakes duplication (sign flip,
                # same contract as harness.sweeps.crossover)
                margin = speedup - 1.0
                if margin > 0 and crossovers[fabric] is None:
                    if prev_margin is None or prev_margin <= 0:
                        crossovers[fabric] = gpus
                prev_margin = margin
            table[fabric] = row
        return table, crossovers

    table, crossovers = run_once(benchmark, experiment)
    for fabric in SCALING_FABRICS:
        # the compositor's advantage must grow from 16 to 64 GPUs on
        # every fabric (duplication re-rasterizes everything everywhere)
        # but need not be strictly monotone: the ring peaks at 32 GPUs,
        # where hop count has not yet eaten into the scheduling win
        speedups = [table[fabric][f"{g} GPUs"] for g in SCALING_GPUS]
        assert speedups[-1] > speedups[0]
        assert speedups[-1] > 1.0  # overtaken by 64 GPUs at the latest
    lines = [R.render_keyed_matrix(
        table, "fabric",
        f"Ablation: chopin+sched speedup vs duplication "
        f"({SCALING_BENCHMARK}, 16-64 GPUs)")]
    lines.append("compositor crossover (first GPU count where "
                 "chopin+sched leads):")
    for fabric in SCALING_FABRICS:
        at = crossovers[fabric]
        lines.append(f"  {fabric:<7}: "
                     f"{'<= 16 GPUs' if at == 16 else at or 'none'}")
    emit(reports_dir, "ablation_topology_scaling", "\n".join(lines))
