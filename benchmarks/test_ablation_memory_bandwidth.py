"""Ablation: DRAM-bandwidth roofline and MSAA (beyond-paper extensions).

Two knobs the paper's Table II fixes, swept:

- **DRAM bandwidth**: with the memory roofline enabled, starving the
  fragment stage of bandwidth hurts CHOPIN *more* than duplication — its
  extra shaded fragments (Fig 15) are extra memory traffic too.
- **MSAA**: per-sample colour/depth multiplies all cross-GPU pixel traffic;
  duplication's full-surface RT-switch broadcasts suffer the most, CHOPIN's
  tile-filtered composition the least.
"""

from repro.harness import make_setup, run_benchmark
from repro.harness import report as R

from conftest import emit, run_once


def test_ablation_memory_bandwidth(benchmark, reports_dir):
    def experiment():
        table = {}
        for dram in (2000, 50, 20, 5):
            setup = make_setup("tiny", num_gpus=8, model_memory=True,
                               dram_gb_per_s=dram)
            dup = run_benchmark("duplication", "cod2", setup)
            chopin = run_benchmark("chopin+sched", "cod2", setup)
            table[f"{dram} GB/s"] = {
                "dup cycles": round(dup.frame_cycles),
                "chopin cycles": round(chopin.frame_cycles),
                "chopin speedup": dup.frame_cycles / chopin.frame_cycles,
            }
        return table

    table = run_once(benchmark, experiment)
    speedups = [table[k]["chopin speedup"] for k in table]
    assert speedups[0] > speedups[-1], \
        "bandwidth starvation must erode CHOPIN's advantage"
    emit(reports_dir, "ablation_memory_bandwidth",
         R.render_keyed_matrix(table, "DRAM", "Ablation: DRAM-bandwidth "
                               "roofline (cod2, 8 GPUs)"))


def test_ablation_msaa(benchmark, reports_dir):
    def experiment():
        table = {}
        for samples in (1, 2, 4):
            setup = make_setup("tiny", num_gpus=8, msaa_samples=samples)
            dup = run_benchmark("duplication", "grid", setup)
            chopin = run_benchmark("chopin+sched", "grid", setup)
            table[f"{samples}x"] = {
                "dup cycles": round(dup.frame_cycles),
                "chopin cycles": round(chopin.frame_cycles),
                "chopin speedup": dup.frame_cycles / chopin.frame_cycles,
                "comp MB": round(chopin.stats.traffic_total(
                    "composition") / 1e6, 1),
            }
        return table

    table = run_once(benchmark, experiment)
    # composition traffic scales with the sample count
    assert table["4x"]["comp MB"] > 3 * table["1x"]["comp MB"]
    emit(reports_dir, "ablation_msaa",
         R.render_keyed_matrix(table, "MSAA", "Ablation: MSAA sample count "
                               "(grid, 8 GPUs)"))
