"""Section VI-D: scheduler traffic scalability estimates."""

from repro.harness import experiments as E
from repro.harness import report as R

from conftest import emit, run_once


def test_sec6d_scheduler_traffic(benchmark, reports_dir):
    data = run_once(benchmark, E.sec6d_scheduler_traffic)
    # paper: ~4 KB per million triangles at interval 1024; 512 B per phase
    assert data["draw_sched_traffic_1M_tris_interval_1024"] < 8192
    assert data["draw_sched_traffic_1B_tris_interval_1024"] < 8 * 10**6
    assert data["composition_sched_traffic_bytes"] == 512
    emit(reports_dir, "sec6d",
         R.render_dict(data, "Section VI-D: scheduler traffic"))
