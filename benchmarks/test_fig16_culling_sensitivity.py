"""Fig 16: artificially retained depth-culled fragments (ut3).

Paper shape: speedup degrades smoothly as more culled fragments are
retained; a large retained share is needed to erase CHOPIN's benefit.
"""

from repro.harness import experiments as E
from repro.harness import report as R

from conftest import emit, run_once


def test_fig16_culling_sensitivity(benchmark, reports_dir):
    rows = run_once(
        benchmark,
        lambda: E.fig16_culling_sensitivity(
            benchmark="ut3", retained=(0.0, 0.1, 0.2, 0.3, 0.4)))
    speedups = [r["speedup"] for r in rows]
    extras = [r["extra_fragments"] for r in rows]
    assert speedups[0] > speedups[-1]
    assert all(b >= a - 1e-9 for a, b in zip(extras, extras[1:]))
    emit(reports_dir, "fig16", R.render_fig16(rows))
