"""Fig 4: GPUpd's extra pipeline stages (projection + distribution).

Paper shape: sequential primitive distribution grows with GPU count and
becomes the critical bottleneck at 8 GPUs.
"""

from repro.harness import experiments as E
from repro.harness import report as R

from conftest import FULL_BENCHMARKS, emit, run_once


def test_fig4_gpupd_overheads(benchmark, reports_dir):
    overheads = run_once(
        benchmark, lambda: E.fig4_gpupd_overheads(benchmarks=FULL_BENCHMARKS))
    for bench in FULL_BENCHMARKS:
        dist = {n: overheads[bench][n]["distribution"] for n in (2, 4, 8)}
        assert dist[2] < dist[8], f"{bench}: distribution must grow with GPUs"
        assert overheads[bench][8]["projection"] > 0
    emit(reports_dir, "fig04", R.render_fig4(overheads))
