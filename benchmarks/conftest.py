"""Shared benchmark-harness helpers.

Each benchmark regenerates one of the paper's tables/figures: it runs the
experiment once (timed by pytest-benchmark), prints the same rows/series the
paper plots, and writes them to ``benchmarks/reports/<name>.txt`` so results
persist outside the pytest capture.

Heavy parameter sweeps default to a four-trace subset (SWEEP_BENCHMARKS) to
keep the full harness under a few minutes; headline figures use the full
Table III suite.
"""

import pathlib

import pytest

#: full Table III suite for the headline figures
FULL_BENCHMARKS = ("cod2", "cry", "grid", "mirror", "nfs", "stal", "ut3",
                   "wolf")
#: subset for multi-configuration sweeps (Fig 18-22)
SWEEP_BENCHMARKS = ("cod2", "grid", "stal", "wolf")

REPORTS_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def reports_dir():
    REPORTS_DIR.mkdir(exist_ok=True)
    return REPORTS_DIR


def emit(reports_dir, name, text):
    """Print a figure's rows and persist them."""
    print("\n" + text)
    (reports_dir / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, fn):
    """Time one full regeneration of the experiment."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
