"""Ablation: CHOPIN's scheduled direct-send vs binary-swap vs radix-k.

The paper (§II-D) argues CHOPIN keeps direct-send's simplicity and fixes
its congestion with the composition scheduler, instead of adopting
multi-round algorithms. This ablation compares the *composition phase*
cost of the three exchange schedules analytically on the same sub-image
regions: per-round link occupancy plus per-message latency, with perfect
overlap inside a round (each algorithm's best case).
"""

from repro.composition import SubImage, binary_swap, direct_send, radix_k
from repro.harness import make_setup
from repro.sfr import ChopinWithScheduler
from repro.core.workflow import GroupMode
from repro.traces import load_benchmark
from repro.harness import report as R

import numpy as np

from conftest import emit, run_once


def phase_cost(transfers, bytes_per_pixel, bandwidth, latency, num_gpus):
    """Cycles for an exchange plan: rounds execute in sequence; within a
    round each GPU's ingress serializes its receives."""
    rounds = {}
    for t in transfers:
        rounds.setdefault(t.round_index, []).append(t)
    total = 0.0
    for _, msgs in sorted(rounds.items()):
        per_gpu = [0.0] * num_gpus
        for m in msgs:
            per_gpu[m.dst] += m.pixels * bytes_per_pixel / bandwidth + latency
        total += max(per_gpu)
    return total


def test_ablation_compositors(benchmark, reports_dir):
    def experiment():
        setup = make_setup("tiny", num_gpus=8)
        bandwidth = setup.config.link.bandwidth_bytes_per_cycle()
        latency = setup.config.link.latency_cycles
        trace = load_benchmark("grid", "tiny")  # largest traffic
        scheme = ChopinWithScheduler(setup.config, setup.costs)
        prep = scheme._functional_pass(trace)
        height, width = trace.height, trace.width
        rng = np.random.default_rng(0)

        costs = {"direct-send": 0.0, "binary-swap": 0.0, "radix-k": 0.0}
        for gp in prep.groups:
            if gp.mode is not GroupMode.OPAQUE_PARALLEL:
                continue
            # reconstruct 8 synthetic sub-images with that group's touched
            # footprint sizes (contents don't matter for the plan)
            images = []
            for g in range(8):
                touched = np.zeros((height, width), bool)
                pixels = int(gp.region_pixels[g].sum())
                flat = touched.reshape(-1)
                flat[rng.choice(flat.size, size=min(pixels, flat.size),
                                replace=False)] = True
                images.append(SubImage(
                    color=np.zeros((height, width, 4), np.float32),
                    depth=np.ones((height, width), np.float32),
                    touched=touched))
            for name, algo in (("direct-send", direct_send),
                               ("binary-swap", binary_swap),
                               ("radix-k", radix_k)):
                _, transfers = algo(images)
                costs[name] += phase_cost(
                    transfers, setup.config.pixel_bytes, bandwidth,
                    latency, 8)
        return costs

    costs = run_once(benchmark, experiment)
    # all three finite and same order of magnitude; direct-send (what the
    # scheduler orchestrates) must not be grossly worse than the others
    assert costs["direct-send"] < 3 * min(costs.values())
    emit(reports_dir, "ablation_compositors",
         R.render_dict({k: f"{v:,.0f} cycles" for k, v in costs.items()},
                       "Ablation: composition-phase cost on grid "
                       "(8 GPUs, opaque groups)"))
