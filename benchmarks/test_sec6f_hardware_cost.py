"""Section VI-F: scheduler hardware storage costs (exact paper numbers)."""

from repro.harness import experiments as E
from repro.harness import report as R

from conftest import emit, run_once


def test_sec6f_hardware_cost(benchmark, reports_dir):
    data = run_once(benchmark, E.sec6f_hardware_cost)
    assert data["draw_scheduler_bytes"] == 128          # paper: 128 B
    assert data["composition_scheduler_bytes"] == 27    # paper: 27 B
    emit(reports_dir, "sec6f",
         R.render_dict(data, "Section VI-F: scheduler hardware cost"))
