"""Ablation: the Molnar sorting taxonomy on one system (paper §III-A).

Where the synchronization happens determines scalability:

- sort-first via duplication: redundant geometry (the Fig 2 problem);
- sort-first via GPUpd: sequential primitive-ID exchange (the Fig 4
  problem);
- sort-middle: full post-geometry attribute exchange — "rarely adopted
  because the geometry processing output is very large";
- sort-last (CHOPIN): sub-image composition, parallel and associative.
"""

from repro.harness import make_setup, run_benchmark
from repro.harness import report as R
from repro.stats import TRAFFIC_COMPOSITION, TRAFFIC_PRIMITIVES, gmean

from conftest import SWEEP_BENCHMARKS, emit, run_once

SCHEMES = ("duplication", "gpupd", "sort-middle", "chopin+sched")


def test_ablation_sorting_taxonomy(benchmark, reports_dir):
    def experiment():
        setup = make_setup("tiny", num_gpus=8)
        table = {}
        for bench in SWEEP_BENCHMARKS:
            base = run_benchmark("duplication", bench, setup)
            table[bench] = {}
            for scheme in SCHEMES:
                result = run_benchmark(scheme, bench, setup)
                exchange_mb = (result.stats.traffic_total(TRAFFIC_PRIMITIVES)
                               + result.stats.traffic_total(
                                   TRAFFIC_COMPOSITION)) / 1e6
                table[bench][scheme] = base.frame_cycles / result.frame_cycles
                table[bench][f"{scheme} MB"] = round(exchange_mb, 2)
        table["GMean"] = {s: gmean(table[b][s] for b in SWEEP_BENCHMARKS)
                          for s in SCHEMES}
        return table

    table = run_once(benchmark, experiment)
    means = table["GMean"]
    # sort-last wins; sort-middle is crippled by attribute bandwidth
    assert means["chopin+sched"] > means["duplication"] * 0.99
    assert means["chopin+sched"] > means["sort-middle"]
    assert means["sort-middle"] < means["gpupd"] * 1.2
    emit(reports_dir, "ablation_sorting",
         R.render_speedups(table, "Ablation: Molnar sorting taxonomy "
                           "(speedup vs duplication; MB = exchange traffic)"))
